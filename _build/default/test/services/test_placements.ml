(* The same end-to-end scenarios under every Controller placement the
   paper deploys: per-node host-CPU Controllers, per-node SmartNIC
   Controllers, and a single shared Controller ("Shared HAL"). Correctness
   must be placement-independent — only timing may differ. *)

open Fractos_sim
module Core = Fractos_core
module Tb = Fractos_testbed.Testbed
module Cluster = Fractos_testbed.Cluster
module Facedata = Fractos_workloads.Facedata
open Fractos_services
open Core

let check_bool = Alcotest.(check bool)
let ok_exn = Error.ok_exn

let placements =
  [ ("cpu", Tb.Ctrl_cpu); ("snic", Tb.Ctrl_snic); ("shared", Tb.Ctrl_shared) ]

let faceverify_e2e placement () =
  Tb.run (fun tb ->
      let img_size = 512 and n_images = 32 in
      let c = Cluster.make ~placement ~extent_size:(n_images * img_size) tb in
      let db = Facedata.db ~img_size ~n:n_images in
      ok_exn
        (Faceverify.populate_db c.Cluster.app ~fs:c.Cluster.fs_cap
           ~name:"facedb" ~content:db);
      let fv =
        ok_exn
          (Faceverify.setup c.Cluster.app ~fs:c.Cluster.fs_cap
             ~gpu_alloc:c.Cluster.gpu_alloc_cap
             ~gpu_load:c.Cluster.gpu_load_cap ~db_name:"facedb" ~img_size
             ~max_batch:8 ~depth:1)
      in
      let probes =
        Facedata.probe_batch ~img_size ~start_id:3 ~batch:8 ~impostor_every:3
      in
      let flags = ok_exn (Faceverify.verify fv ~start_id:3 ~batch:8 ~probes) in
      check_bool "ground truth" true
        (Bytes.equal flags (Facedata.expected_matches ~batch:8 ~impostor_every:3)))

let fs_roundtrip placement () =
  Tb.run (fun tb ->
      let c = Cluster.make ~placement tb in
      let app = c.Cluster.app in
      let proc = Svc.proc app in
      ok_exn (Fs.create app ~fs:c.Cluster.fs_cap ~name:"f" ~size:20_000);
      let h = ok_exn (Fs.open_ app ~fs:c.Cluster.fs_cap ~name:"f" Fs.Fs_rw) in
      let data = Bytes.init 20_000 (fun i -> Char.chr ((i * 17) land 0xff)) in
      let wbuf = Process.alloc proc 20_000 in
      Membuf.write wbuf ~off:0 data;
      let src = ok_exn (Api.memory_create proc wbuf Perms.ro) in
      ok_exn (Fs.write app h ~off:0 ~len:20_000 ~src);
      let rbuf = Process.alloc proc 20_000 in
      let dst = ok_exn (Api.memory_create proc rbuf Perms.rw) in
      ok_exn (Fs.read app h ~off:0 ~len:20_000 ~dst);
      check_bool "roundtrip" true (Bytes.equal data rbuf.Membuf.data))

let revocation placement () =
  Tb.run (fun tb ->
      let c = Cluster.make ~placement tb in
      let app = c.Cluster.app in
      let proc = Svc.proc app in
      let vol =
        ok_exn
          (Blockdev.create_vol app ~create_req:c.Cluster.create_vol_cap
             ~size:4096)
      in
      (* the block adaptor revokes the app's read capability: further use
         must fail regardless of where the controllers run *)
      let blk_proc = Svc.proc (Blockdev.svc c.Cluster.blk) in
      ignore blk_proc;
      ok_exn (Api.cap_revoke proc vol.Blockdev.read_req);
      Engine.sleep (Time.ms 2);
      let dst = ok_exn (Api.memory_create proc (Process.alloc proc 64) Perms.rw) in
      match
        Api.request_derive proc vol.Blockdev.read_req
          ~imms:(Blockdev.read_args ~off:0 ~len:64)
          ~caps:[ dst ] ()
      with
      | Error (Error.Revoked | Error.Invalid_cap) -> ()
      | Error e -> Alcotest.failf "unexpected: %s" (Error.to_string e)
      | Ok _ -> Alcotest.fail "revoked volume request still derivable")

let snic_slower_than_cpu () =
  (* placement changes timing, not outcomes: the sNIC run must be strictly
     slower than the CPU run on the same workload *)
  let time placement =
    Tb.run (fun tb ->
        let img_size = 512 and n_images = 32 in
        let c = Cluster.make ~placement ~extent_size:(n_images * img_size) tb in
        let db = Facedata.db ~img_size ~n:n_images in
        ok_exn
          (Faceverify.populate_db c.Cluster.app ~fs:c.Cluster.fs_cap
             ~name:"facedb" ~content:db);
        let fv =
          ok_exn
            (Faceverify.setup c.Cluster.app ~fs:c.Cluster.fs_cap
               ~gpu_alloc:c.Cluster.gpu_alloc_cap
               ~gpu_load:c.Cluster.gpu_load_cap ~db_name:"facedb" ~img_size
               ~max_batch:8 ~depth:1)
        in
        let probes =
          Facedata.probe_batch ~img_size ~start_id:0 ~batch:8 ~impostor_every:0
        in
        ignore (ok_exn (Faceverify.verify fv ~start_id:0 ~batch:8 ~probes));
        let t0 = Engine.now () in
        ignore (ok_exn (Faceverify.verify fv ~start_id:0 ~batch:8 ~probes));
        Engine.now () - t0)
  in
  let cpu = time Tb.Ctrl_cpu and snic = time Tb.Ctrl_snic in
  check_bool
    (Printf.sprintf "snic (%s) slower than cpu (%s)" (Time.to_string snic)
       (Time.to_string cpu))
    true (snic > cpu)

let () =
  let per_placement mk =
    List.map
      (fun (name, p) -> Alcotest.test_case name `Quick (mk p))
      placements
  in
  Alcotest.run "fractos_placements"
    [
      ("faceverify-e2e", per_placement faceverify_e2e);
      ("fs-roundtrip", per_placement fs_roundtrip);
      ("revocation", per_placement revocation);
      ( "timing",
        [ Alcotest.test_case "snic slower" `Quick snic_slower_than_cpu ] );
    ]
