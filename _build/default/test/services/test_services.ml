(* Integration tests: registry, GPU adaptor, block-device adaptor, the
   two-tier file system (FS / DAX / write-through composition) and the
   end-to-end face-verification application. *)

open Fractos_sim
module Net = Fractos_net
module Core = Fractos_core
module Dev = Fractos_device
module Tb = Fractos_testbed.Testbed
open Fractos_services
module Facedata = Fractos_workloads.Facedata
open Core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let ok_exn = Error.ok_exn

(* A 3-node cluster shaped like the paper's: an application node, a storage
   node with an NVMe SSD and its adaptor, and a GPU node with its adaptor.
   One controller per node on the host CPU. *)
type cluster = {
  tb : Tb.t;
  app : Svc.t;
  blk : Blockdev.t;
  gpu_ad : Gpu_adaptor.t;
  gpu : Dev.Gpu.t;
  ssd : Dev.Nvme.t;
  (* client-side caps held by the app *)
  c_create_vol : Api.cid;
  c_gpu_alloc : Api.cid;
  c_gpu_load : Api.cid;
  c_gpu_free : Api.cid;
}

let cfg = Net.Config.default

let make_cluster ?(extent_size = 1 lsl 20) ?(write_through = false) tb =
  let setups = Tb.nodes_with_ctrls tb Tb.Ctrl_cpu [ "app"; "storage"; "gpu" ] in
  let s_app = List.nth setups 0
  and s_sto = List.nth setups 1
  and s_gpu = List.nth setups 2 in
  let app_proc = Tb.add_proc tb ~on:s_app.Tb.node ~ctrl:s_app.Tb.ctrl "app" in
  let blk_proc =
    Tb.add_proc tb ~on:s_sto.Tb.node ~ctrl:s_sto.Tb.ctrl "blk-adaptor"
  in
  let gpu_proc =
    Tb.add_proc tb ~on:s_gpu.Tb.node ~ctrl:s_gpu.Tb.ctrl "gpu-adaptor"
  in
  let fs_proc = Tb.add_proc tb ~on:s_sto.Tb.node ~ctrl:s_sto.Tb.ctrl "fs" in
  let ssd =
    Dev.Nvme.create ~node:s_sto.Tb.node ~config:cfg ~capacity:(1 lsl 30)
  in
  let gpu =
    Dev.Gpu.create ~node:s_gpu.Tb.node ~config:cfg ~mem_bytes:(1 lsl 30)
  in
  Dev.Gpu.load_kernel gpu (Faceverify.kernel ~config:cfg);
  let blk = Blockdev.start blk_proc ssd in
  let gpu_ad = Gpu_adaptor.start gpu_proc gpu in
  let app = Svc.create app_proc in
  let alloc_r, load_r, free_r = Gpu_adaptor.base_requests gpu_ad in
  let cluster =
    {
      tb;
      app;
      blk;
      gpu_ad;
      gpu;
      ssd;
      c_create_vol =
        Tb.grant ~src:blk_proc ~dst:app_proc (Blockdev.create_vol_request blk);
      c_gpu_alloc = Tb.grant ~src:gpu_proc ~dst:app_proc alloc_r;
      c_gpu_load = Tb.grant ~src:gpu_proc ~dst:app_proc load_r;
      c_gpu_free = Tb.grant ~src:gpu_proc ~dst:app_proc free_r;
    }
  in
  let fs =
    Fs.start fs_proc
      ~create_vol:
        (Tb.grant ~src:blk_proc ~dst:fs_proc (Blockdev.create_vol_request blk))
      ~extent_size ~write_through ()
  in
  let c_fs = Tb.grant ~src:fs_proc ~dst:app_proc (Fs.base_request fs) in
  (cluster, c_fs)

(* ------------------------------------------------------------------ *)
(* Registry                                                           *)
(* ------------------------------------------------------------------ *)

let test_registry_put_get () =
  Tb.run (fun tb ->
      let s = List.hd (Tb.nodes_with_ctrls tb Tb.Ctrl_cpu [ "n" ]) in
      let reg_proc = Tb.add_proc tb ~on:s.Tb.node ~ctrl:s.Tb.ctrl "registry" in
      let a_proc = Tb.add_proc tb ~on:s.Tb.node ~ctrl:s.Tb.ctrl "a" in
      let b_proc = Tb.add_proc tb ~on:s.Tb.node ~ctrl:s.Tb.ctrl "b" in
      let reg = Registry.start reg_proc in
      let a = Svc.create a_proc and b = Svc.create b_proc in
      let reg_a = Tb.grant ~src:reg_proc ~dst:a_proc (Registry.base_request reg) in
      let reg_b = Tb.grant ~src:reg_proc ~dst:b_proc (Registry.base_request reg) in
      (* a publishes a service request; b looks it up and invokes it *)
      let svc_req = ok_exn (Api.request_create a_proc ~tag:"a.svc" ()) in
      ok_exn (Registry.publish a ~registry:reg_a ~name:"the-service" svc_req);
      let got = ok_exn (Registry.lookup b ~registry:reg_b ~name:"the-service") in
      Svc.handle a ~tag:"a.svc" (fun svc d -> Svc.reply svc d ~status:0 ());
      let d = ok_exn (Svc.call b ~svc:got ()) in
      check_int "service answered" 0 (Svc.status d))

let test_registry_missing () =
  Tb.run (fun tb ->
      let s = List.hd (Tb.nodes_with_ctrls tb Tb.Ctrl_cpu [ "n" ]) in
      let reg_proc = Tb.add_proc tb ~on:s.Tb.node ~ctrl:s.Tb.ctrl "registry" in
      let a_proc = Tb.add_proc tb ~on:s.Tb.node ~ctrl:s.Tb.ctrl "a" in
      let reg = Registry.start reg_proc in
      let a = Svc.create a_proc in
      let reg_a = Tb.grant ~src:reg_proc ~dst:a_proc (Registry.base_request reg) in
      match Registry.lookup a ~registry:reg_a ~name:"absent" with
      | Error Error.Invalid_cap -> ()
      | Ok _ -> Alcotest.fail "lookup of absent name succeeded"
      | Error e -> Alcotest.failf "unexpected: %s" (Error.to_string e))

(* ------------------------------------------------------------------ *)
(* GPU adaptor                                                        *)
(* ------------------------------------------------------------------ *)

let test_gpu_adaptor_alloc_copy_free () =
  Tb.run (fun tb ->
      let c, _ = make_cluster tb in
      let buf = ok_exn (Gpu_adaptor.alloc c.app ~alloc_req:c.c_gpu_alloc ~size:64) in
      (* copy data into GPU memory through FractOS *)
      let proc = Svc.proc c.app in
      let local = Process.alloc proc 64 in
      Membuf.write local ~off:0 (Bytes.make 64 'G');
      let src = ok_exn (Api.memory_create proc local Perms.ro) in
      ok_exn (Api.memory_copy proc ~src ~dst:buf.Gpu_adaptor.mem);
      check_int "gpu mem consumed" ((1 lsl 30) - 64) (Dev.Gpu.mem_free_bytes c.gpu);
      ok_exn (Gpu_adaptor.free c.app ~free_req:c.c_gpu_free buf);
      check_int "gpu mem released" (1 lsl 30) (Dev.Gpu.mem_free_bytes c.gpu))

let test_gpu_adaptor_kernel_invoke () =
  Tb.run (fun tb ->
      let c, _ = make_cluster tb in
      let img_size = 64 and batch = 4 in
      let alloc size =
        ok_exn (Gpu_adaptor.alloc c.app ~alloc_req:c.c_gpu_alloc ~size)
      in
      let probe = alloc (batch * img_size) in
      let db = alloc (batch * img_size) in
      let out = alloc batch in
      let proc = Svc.proc c.app in
      (* identical probe and db content -> all match *)
      let content = Facedata.db ~img_size ~n:batch in
      let local = Process.alloc proc (batch * img_size) in
      Membuf.write local ~off:0 content;
      let src = ok_exn (Api.memory_create proc local Perms.ro) in
      ok_exn (Api.memory_copy proc ~src ~dst:probe.Gpu_adaptor.mem);
      ok_exn (Api.memory_copy proc ~src ~dst:db.Gpu_adaptor.mem);
      let invoke_req =
        ok_exn (Gpu_adaptor.load c.app ~load_req:c.c_gpu_load ~name:Faceverify.kernel_name)
      in
      let ok_tag = Svc.fresh_tag c.app and err_tag = Svc.fresh_tag c.app in
      let ok_cont = ok_exn (Api.request_create proc ~tag:ok_tag ()) in
      let err_cont = ok_exn (Api.request_create proc ~tag:err_tag ()) in
      let iv = Svc.expect_pair c.app ~ok:ok_tag ~err:err_tag in
      let imms =
        Gpu_adaptor.invoke_args ~items:batch ~bufs:[ probe; db; out ]
          ~user:[ Args.of_int batch; Args.of_int img_size ]
      in
      let launch =
        ok_exn (Api.request_derive proc invoke_req ~imms ~caps:[ ok_cont; err_cont ] ())
      in
      ok_exn (Api.request_invoke proc launch);
      let d = Ivar.await iv in
      check_bool "success continuation" true (String.equal d.State.d_tag ok_tag);
      (* fetch results *)
      let out_local = Process.alloc proc batch in
      let dst = ok_exn (Api.memory_create proc out_local Perms.rw) in
      ok_exn (Api.memory_copy proc ~src:out.Gpu_adaptor.mem ~dst);
      check_bool "all matched" true
        (Bytes.equal (Membuf.read out_local ~off:0 ~len:batch)
           (Bytes.make batch '\001')))

let test_gpu_adaptor_error_continuation () =
  Tb.run (fun tb ->
      let c, _ = make_cluster tb in
      let proc = Svc.proc c.app in
      let invoke_req =
        ok_exn (Gpu_adaptor.load c.app ~load_req:c.c_gpu_load ~name:"no-such-kernel")
      in
      let ok_tag = Svc.fresh_tag c.app and err_tag = Svc.fresh_tag c.app in
      let ok_cont = ok_exn (Api.request_create proc ~tag:ok_tag ()) in
      let err_cont = ok_exn (Api.request_create proc ~tag:err_tag ()) in
      let iv = Svc.expect_pair c.app ~ok:ok_tag ~err:err_tag in
      let imms =
        Gpu_adaptor.invoke_args ~items:1 ~bufs:[] ~user:[]
      in
      let launch =
        ok_exn (Api.request_derive proc invoke_req ~imms ~caps:[ ok_cont; err_cont ] ())
      in
      ok_exn (Api.request_invoke proc launch);
      let d = Ivar.await iv in
      check_bool "error continuation" true (String.equal d.State.d_tag err_tag))

(* ------------------------------------------------------------------ *)
(* Block-device adaptor                                               *)
(* ------------------------------------------------------------------ *)

let test_blockdev_write_read_roundtrip () =
  Tb.run (fun tb ->
      let c, _ = make_cluster tb in
      let vol =
        ok_exn (Blockdev.create_vol c.app ~create_req:c.c_create_vol ~size:65536)
      in
      let proc = Svc.proc c.app in
      let data = Bytes.init 5000 (fun i -> Char.chr (i land 0xff)) in
      let wbuf = Process.alloc proc 5000 in
      Membuf.write wbuf ~off:0 data;
      let src = ok_exn (Api.memory_create proc wbuf Perms.ro) in
      let ok1, _ =
        ok_exn
          (Svc.call_cont c.app ~svc:vol.Blockdev.write_req
             ~imms:(Blockdev.write_args ~off:100 ~len:5000)
             ~place:(fun ~ok ~err -> [ src; ok; err ])
             ())
      in
      check_bool "write ok" true ok1;
      let rbuf = Process.alloc proc 5000 in
      let dst = ok_exn (Api.memory_create proc rbuf Perms.rw) in
      let ok2, _ =
        ok_exn
          (Svc.call_cont c.app ~svc:vol.Blockdev.read_req
             ~imms:(Blockdev.read_args ~off:100 ~len:5000)
             ~place:(fun ~ok ~err -> [ dst; ok; err ])
             ())
      in
      check_bool "read ok" true ok2;
      check_bool "roundtrip" true (Bytes.equal data rbuf.Membuf.data))

let test_blockdev_oob_error_continuation () =
  Tb.run (fun tb ->
      let c, _ = make_cluster tb in
      let vol =
        ok_exn (Blockdev.create_vol c.app ~create_req:c.c_create_vol ~size:4096)
      in
      let proc = Svc.proc c.app in
      let rbuf = Process.alloc proc 8192 in
      let dst = ok_exn (Api.memory_create proc rbuf Perms.rw) in
      let ok, _ =
        ok_exn
          (Svc.call_cont c.app ~svc:vol.Blockdev.read_req
             ~imms:(Blockdev.read_args ~off:0 ~len:8192)
             ~place:(fun ~ok ~err -> [ dst; ok; err ])
             ())
      in
      check_bool "error path taken" false ok)

(* The Fig. 3 pattern: the SSD reads a block, copies it into GPU memory,
   and invokes a GPU kernel Request — without knowing a GPU is behind
   either capability. *)
let test_blockdev_continuation_into_gpu () =
  Tb.run (fun tb ->
      let c, _ = make_cluster tb in
      let proc = Svc.proc c.app in
      let img_size = 128 and batch = 2 in
      let data = Facedata.db ~img_size ~n:batch in
      let vol =
        ok_exn (Blockdev.create_vol c.app ~create_req:c.c_create_vol ~size:4096)
      in
      (* put the data on disk *)
      let wbuf = Process.alloc proc (Bytes.length data) in
      Membuf.write wbuf ~off:0 data;
      let src = ok_exn (Api.memory_create proc wbuf Perms.ro) in
      let _ =
        ok_exn
          (Svc.call_cont c.app ~svc:vol.Blockdev.write_req
             ~imms:(Blockdev.write_args ~off:0 ~len:(Bytes.length data))
             ~place:(fun ~ok ~err -> [ src; ok; err ])
             ())
      in
      (* GPU buffers: probe pre-filled through FractOS, db read from SSD *)
      let alloc size =
        ok_exn (Gpu_adaptor.alloc c.app ~alloc_req:c.c_gpu_alloc ~size)
      in
      let probe = alloc (batch * img_size) in
      let db = alloc (batch * img_size) in
      let out = alloc batch in
      ok_exn (Api.memory_copy proc ~src ~dst:probe.Gpu_adaptor.mem);
      let invoke_req =
        ok_exn
          (Gpu_adaptor.load c.app ~load_req:c.c_gpu_load
             ~name:Faceverify.kernel_name)
      in
      let ok_tag = Svc.fresh_tag c.app and err_tag = Svc.fresh_tag c.app in
      let ok_cont = ok_exn (Api.request_create proc ~tag:ok_tag ()) in
      let err_cont = ok_exn (Api.request_create proc ~tag:err_tag ()) in
      let iv = Svc.expect_pair c.app ~ok:ok_tag ~err:err_tag in
      let kernel_req =
        ok_exn
          (Api.request_derive proc invoke_req
             ~imms:
               (Gpu_adaptor.invoke_args ~items:batch ~bufs:[ probe; db; out ]
                  ~user:[ Args.of_int batch; Args.of_int img_size ])
             ~caps:[ ok_cont; err_cont ] ())
      in
      (* chain: SSD read -> (data into GPU db buffer) -> kernel invoke *)
      let pipeline =
        ok_exn
          (Api.request_derive proc vol.Blockdev.read_req
             ~imms:(Blockdev.read_args ~off:0 ~len:(batch * img_size))
             ~caps:[ db.Gpu_adaptor.mem; kernel_req ] ())
      in
      ok_exn (Api.request_invoke proc pipeline);
      let d = Ivar.await iv in
      check_bool "kernel ran after SSD read" true
        (String.equal d.State.d_tag ok_tag);
      let out_local = Process.alloc proc batch in
      let dst = ok_exn (Api.memory_create proc out_local Perms.rw) in
      ok_exn (Api.memory_copy proc ~src:out.Gpu_adaptor.mem ~dst);
      check_bool "matches computed from disk data" true
        (Bytes.equal (Membuf.read out_local ~off:0 ~len:batch)
           (Bytes.make batch '\001')))

(* ------------------------------------------------------------------ *)
(* File system                                                        *)
(* ------------------------------------------------------------------ *)

let fs_write_read_file tb ~extent_size ~size =
  let c, fs = make_cluster ~extent_size tb in
  let proc = Svc.proc c.app in
  ok_exn (Fs.create c.app ~fs ~name:"f" ~size);
  let h = ok_exn (Fs.open_ c.app ~fs ~name:"f" Fs.Fs_rw) in
  let data = Bytes.init size (fun i -> Char.chr ((i * 7) land 0xff)) in
  let wbuf = Process.alloc proc size in
  Membuf.write wbuf ~off:0 data;
  let src = ok_exn (Api.memory_create proc wbuf Perms.ro) in
  ok_exn (Fs.write c.app h ~off:0 ~len:size ~src);
  let rbuf = Process.alloc proc size in
  let dst = ok_exn (Api.memory_create proc rbuf Perms.rw) in
  ok_exn (Fs.read c.app h ~off:0 ~len:size ~dst);
  (data, rbuf.Membuf.data)

let test_fs_roundtrip_single_extent () =
  Tb.run (fun tb ->
      let a, b = fs_write_read_file tb ~extent_size:65536 ~size:10_000 in
      check_bool "roundtrip" true (Bytes.equal a b))

let test_fs_roundtrip_multi_extent () =
  Tb.run (fun tb ->
      (* 100 KB file over 16 KB extents: 7 extents, reads/writes span *)
      let a, b = fs_write_read_file tb ~extent_size:16_384 ~size:100_000 in
      check_bool "roundtrip across extents" true (Bytes.equal a b))

let test_fs_partial_read_offset () =
  Tb.run (fun tb ->
      let c, fs = make_cluster ~extent_size:16_384 tb in
      let proc = Svc.proc c.app in
      let size = 50_000 in
      ok_exn (Fs.create c.app ~fs ~name:"f" ~size);
      let h = ok_exn (Fs.open_ c.app ~fs ~name:"f" Fs.Fs_rw) in
      let data = Bytes.init size (fun i -> Char.chr ((i * 13) land 0xff)) in
      let wbuf = Process.alloc proc size in
      Membuf.write wbuf ~off:0 data;
      let src = ok_exn (Api.memory_create proc wbuf Perms.ro) in
      ok_exn (Fs.write c.app h ~off:0 ~len:size ~src);
      (* read 20k spanning an extent boundary at offset 10k *)
      let rbuf = Process.alloc proc 20_000 in
      let dst = ok_exn (Api.memory_create proc rbuf Perms.rw) in
      ok_exn (Fs.read c.app h ~off:10_000 ~len:20_000 ~dst);
      check_bool "windowed read" true
        (Bytes.equal rbuf.Membuf.data (Bytes.sub data 10_000 20_000)))

let test_fs_open_missing () =
  Tb.run (fun tb ->
      let c, fs = make_cluster tb in
      match Fs.open_ c.app ~fs ~name:"ghost" Fs.Fs_ro with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "opened a missing file")

let test_fs_ro_open_has_no_write () =
  Tb.run (fun tb ->
      let c, fs = make_cluster tb in
      ok_exn (Fs.create c.app ~fs ~name:"f" ~size:4096);
      let h = ok_exn (Fs.open_ c.app ~fs ~name:"f" Fs.Fs_ro) in
      check_bool "no write request" true (h.Fs.h_write = None);
      let proc = Svc.proc c.app in
      let src = ok_exn (Api.memory_create proc (Process.alloc proc 16) Perms.ro) in
      match Fs.write c.app h ~off:0 ~len:16 ~src with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "wrote through ro handle")

let test_fs_dax_read () =
  Tb.run (fun tb ->
      let c, fs = make_cluster ~extent_size:65536 tb in
      let proc = Svc.proc c.app in
      let size = 30_000 in
      ok_exn (Fs.create c.app ~fs ~name:"f" ~size);
      let h = ok_exn (Fs.open_ c.app ~fs ~name:"f" Fs.Fs_rw) in
      let data = Bytes.init size (fun i -> Char.chr ((i * 3) land 0xff)) in
      let wbuf = Process.alloc proc size in
      Membuf.write wbuf ~off:0 data;
      let src = ok_exn (Api.memory_create proc wbuf Perms.ro) in
      ok_exn (Fs.write c.app h ~off:0 ~len:size ~src);
      (* DAX open: client drives the block device directly *)
      let dh = ok_exn (Fs.open_ c.app ~fs ~name:"f" Fs.Dax_ro) in
      check_int "one extent" 1 (Array.length dh.Fs.h_dax_read);
      check_int "no write caps" 0 (Array.length dh.Fs.h_dax_write);
      let rbuf = Process.alloc proc 5000 in
      let dst = ok_exn (Api.memory_create proc rbuf Perms.rw) in
      let ext, imms =
        match Fs.read_request_args dh ~off:2000 ~len:5000 with
        | Some x -> x
        | None -> Alcotest.fail "intra-extent range rejected"
      in
      let ok, _ =
        ok_exn
          (Svc.call_cont c.app ~svc:dh.Fs.h_dax_read.(ext) ~imms
             ~place:(fun ~ok ~err -> [ dst; ok; err ])
             ())
      in
      check_bool "dax read ok" true ok;
      check_bool "dax data" true
        (Bytes.equal rbuf.Membuf.data (Bytes.sub data 2000 5000)))

let test_fs_dax_faster_than_fs_mode () =
  Tb.run (fun tb ->
      let c, fs = make_cluster ~extent_size:(1 lsl 20) tb in
      let proc = Svc.proc c.app in
      let size = 262_144 in
      ok_exn (Fs.create c.app ~fs ~name:"f" ~size);
      let h = ok_exn (Fs.open_ c.app ~fs ~name:"f" Fs.Fs_rw) in
      let wbuf = Process.alloc proc size in
      let src = ok_exn (Api.memory_create proc wbuf Perms.ro) in
      ok_exn (Fs.write c.app h ~off:0 ~len:size ~src);
      let rbuf = Process.alloc proc size in
      let dst = ok_exn (Api.memory_create proc rbuf Perms.rw) in
      let t0 = Engine.now () in
      ok_exn (Fs.read c.app h ~off:0 ~len:size ~dst);
      let fs_time = Engine.now () - t0 in
      let dh = ok_exn (Fs.open_ c.app ~fs ~name:"f" Fs.Dax_ro) in
      let ext, imms =
        Option.get (Fs.read_request_args dh ~off:0 ~len:size)
      in
      let t1 = Engine.now () in
      let ok, _ =
        ok_exn
          (Svc.call_cont c.app ~svc:dh.Fs.h_dax_read.(ext) ~imms
             ~place:(fun ~ok ~err -> [ dst; ok; err ])
             ())
      in
      let dax_time = Engine.now () - t1 in
      check_bool "dax ok" true ok;
      (* Fig. 10: DAX removes one full network data transfer -> 1.1-2x *)
      check_bool
        (Printf.sprintf "dax (%s) faster than fs (%s)"
           (Time.to_string dax_time) (Time.to_string fs_time))
        true
        (dax_time * 11 / 10 < fs_time))

let test_fs_write_through_composition () =
  Tb.run (fun tb ->
      let c, fs = make_cluster ~extent_size:65536 ~write_through:true tb in
      let proc = Svc.proc c.app in
      let size = 8192 in
      ok_exn (Fs.create c.app ~fs ~name:"f" ~size);
      let h = ok_exn (Fs.open_ c.app ~fs ~name:"f" Fs.Fs_rw) in
      let data = Bytes.init size (fun i -> Char.chr ((i * 5) land 0xff)) in
      let wbuf = Process.alloc proc size in
      Membuf.write wbuf ~off:0 data;
      let src = ok_exn (Api.memory_create proc wbuf Perms.ro) in
      ok_exn (Fs.write c.app h ~off:0 ~len:size ~src);
      let rbuf = Process.alloc proc size in
      let dst = ok_exn (Api.memory_create proc rbuf Perms.rw) in
      ok_exn (Fs.read c.app h ~off:0 ~len:size ~dst);
      check_bool "write-through roundtrip" true (Bytes.equal data rbuf.Membuf.data))

let test_fs_write_through_skips_fs_data_path () =
  (* With composition, the client->FS data transfer disappears: the block
     device pulls from the client directly. Compare data bytes into the FS
     node... simpler: compare write latencies. *)
  Tb.run (fun tb ->
      let size = 262_144 in
      let run_write ~write_through =
        let c, fs = make_cluster ~extent_size:(1 lsl 20) ~write_through tb in
        let proc = Svc.proc c.app in
        let name = if write_through then "wt" else "st" in
        ok_exn (Fs.create c.app ~fs ~name ~size);
        let h = ok_exn (Fs.open_ c.app ~fs ~name Fs.Fs_rw) in
        let wbuf = Process.alloc proc size in
        let src = ok_exn (Api.memory_create proc wbuf Perms.ro) in
        let t0 = Engine.now () in
        ok_exn (Fs.write c.app h ~off:0 ~len:size ~src);
        Engine.now () - t0
      in
      let staged = run_write ~write_through:false in
      let composed = run_write ~write_through:true in
      check_bool
        (Printf.sprintf "composed (%s) < staged (%s)"
           (Time.to_string composed) (Time.to_string staged))
        true (composed < staged))

(* ------------------------------------------------------------------ *)
(* Face verification end to end                                       *)
(* ------------------------------------------------------------------ *)

let setup_faceverify tb ~img_size ~n_images ~max_batch ~depth =
  let c, fs = make_cluster ~extent_size:(max 65536 (n_images * img_size)) tb in
  let db = Facedata.db ~img_size ~n:n_images in
  ok_exn (Faceverify.populate_db c.app ~fs ~name:"facedb" ~content:db);
  let fv =
    ok_exn
      (Faceverify.setup c.app ~fs ~gpu_alloc:c.c_gpu_alloc
         ~gpu_load:c.c_gpu_load ~db_name:"facedb" ~img_size ~max_batch ~depth)
  in
  (c, fv)

let test_faceverify_end_to_end () =
  Tb.run (fun tb ->
      let img_size = 1024 and n_images = 64 in
      let _, fv = setup_faceverify tb ~img_size ~n_images ~max_batch:16 ~depth:2 in
      let batch = 8 and start_id = 10 in
      let probes =
        Facedata.probe_batch ~img_size ~start_id ~batch ~impostor_every:4
      in
      let flags = ok_exn (Faceverify.verify fv ~start_id ~batch ~probes) in
      check_bool "ground truth" true
        (Bytes.equal flags (Facedata.expected_matches ~batch ~impostor_every:4)))

let test_faceverify_all_genuine () =
  Tb.run (fun tb ->
      let img_size = 512 and n_images = 32 in
      let _, fv = setup_faceverify tb ~img_size ~n_images ~max_batch:32 ~depth:1 in
      let probes =
        Facedata.probe_batch ~img_size ~start_id:0 ~batch:32 ~impostor_every:0
      in
      let flags = ok_exn (Faceverify.verify fv ~start_id:0 ~batch:32 ~probes) in
      check_bool "all ones" true (Bytes.equal flags (Bytes.make 32 '\001')))

let test_faceverify_concurrent_requests () =
  Tb.run (fun tb ->
      let img_size = 512 and n_images = 64 in
      let _, fv = setup_faceverify tb ~img_size ~n_images ~max_batch:8 ~depth:3 in
      let results = ref 0 in
      for k = 0 to 5 do
        Engine.spawn (fun () ->
            let start_id = k * 8 in
            let probes =
              Facedata.probe_batch ~img_size ~start_id ~batch:8 ~impostor_every:0
            in
            let flags =
              ok_exn (Faceverify.verify fv ~start_id ~batch:8 ~probes)
            in
            if Bytes.equal flags (Bytes.make 8 '\001') then incr results)
      done;
      Engine.sleep (Time.s 2);
      check_int "all six requests correct" 6 !results)

let test_faceverify_batch_too_large () =
  Tb.run (fun tb ->
      let img_size = 128 and n_images = 16 in
      let _, fv = setup_faceverify tb ~img_size ~n_images ~max_batch:4 ~depth:1 in
      match
        Faceverify.verify fv ~start_id:0 ~batch:8
          ~probes:(Bytes.create (8 * img_size))
      with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "oversized batch accepted")

(* ------------------------------------------------------------------ *)
(* Whole-system determinism                                            *)
(* ------------------------------------------------------------------ *)

let test_deterministic_replay () =
  (* The same seeded workload on a fresh cluster must produce identical
     simulated time and identical traffic, bit for bit. *)
  let run_once () =
    Tb.run (fun tb ->
        let img_size = 512 and n_images = 32 in
        let fv =
          let c, fs = make_cluster ~extent_size:(n_images * img_size) tb in
          let db = Facedata.db ~img_size ~n:n_images in
          ok_exn (Faceverify.populate_db c.app ~fs ~name:"facedb" ~content:db);
          ok_exn
            (Faceverify.setup c.app ~fs ~gpu_alloc:c.c_gpu_alloc
               ~gpu_load:c.c_gpu_load ~db_name:"facedb" ~img_size
               ~max_batch:8 ~depth:2)
        in
        let rng = Prng.create ~seed:21 in
        for _ = 1 to 4 do
          let start_id = Prng.int rng (n_images - 8) in
          let probes =
            Facedata.probe_batch ~img_size ~start_id ~batch:8 ~impostor_every:2
          in
          ignore (ok_exn (Faceverify.verify fv ~start_id ~batch:8 ~probes))
        done;
        let census = Net.Stats.census (Net.Fabric.stats tb.Tb.fabric) in
        (Engine.now (), census.net_messages, census.net_bytes))
  in
  let a = run_once () and b = run_once () in
  check_bool "identical simulated time and traffic" true (a = b)

let () =
  Alcotest.run "fractos_services"
    [
      ( "registry",
        [
          Alcotest.test_case "put/get" `Quick test_registry_put_get;
          Alcotest.test_case "missing" `Quick test_registry_missing;
        ] );
      ( "gpu-adaptor",
        [
          Alcotest.test_case "alloc/copy/free" `Quick
            test_gpu_adaptor_alloc_copy_free;
          Alcotest.test_case "kernel invoke" `Quick
            test_gpu_adaptor_kernel_invoke;
          Alcotest.test_case "error continuation" `Quick
            test_gpu_adaptor_error_continuation;
        ] );
      ( "blockdev",
        [
          Alcotest.test_case "write/read roundtrip" `Quick
            test_blockdev_write_read_roundtrip;
          Alcotest.test_case "oob error continuation" `Quick
            test_blockdev_oob_error_continuation;
          Alcotest.test_case "continuation into GPU (Fig 3)" `Quick
            test_blockdev_continuation_into_gpu;
        ] );
      ( "fs",
        [
          Alcotest.test_case "roundtrip single extent" `Quick
            test_fs_roundtrip_single_extent;
          Alcotest.test_case "roundtrip multi extent" `Quick
            test_fs_roundtrip_multi_extent;
          Alcotest.test_case "partial read offset" `Quick
            test_fs_partial_read_offset;
          Alcotest.test_case "open missing" `Quick test_fs_open_missing;
          Alcotest.test_case "ro open has no write" `Quick
            test_fs_ro_open_has_no_write;
          Alcotest.test_case "dax read" `Quick test_fs_dax_read;
          Alcotest.test_case "dax faster than fs" `Quick
            test_fs_dax_faster_than_fs_mode;
          Alcotest.test_case "write-through roundtrip" `Quick
            test_fs_write_through_composition;
          Alcotest.test_case "write-through faster" `Quick
            test_fs_write_through_skips_fs_data_path;
        ] );
      ( "faceverify",
        [
          Alcotest.test_case "end to end" `Quick test_faceverify_end_to_end;
          Alcotest.test_case "all genuine" `Quick test_faceverify_all_genuine;
          Alcotest.test_case "concurrent requests" `Quick
            test_faceverify_concurrent_requests;
          Alcotest.test_case "batch too large" `Quick
            test_faceverify_batch_too_large;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "seeded replay is identical" `Quick
            test_deterministic_replay;
        ] );
    ]
