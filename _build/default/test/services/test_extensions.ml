(* Tests for the extension layers: the Flow dataflow DSL and the
   resource-management service. *)

open Fractos_sim
module Net = Fractos_net
module Core = Fractos_core
module Dev = Fractos_device
module Tb = Fractos_testbed.Testbed
module Cluster = Fractos_testbed.Cluster
module Facedata = Fractos_workloads.Facedata
open Fractos_services
open Core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let ok_exn = Error.ok_exn

(* ------------------------------------------------------------------ *)
(* Flow                                                                *)
(* ------------------------------------------------------------------ *)

(* SSD -> GPU -> done, the Fig. 3 chain, expressed as a Flow pipeline. *)
let test_flow_ssd_to_gpu () =
  Tb.run (fun tb ->
      let c = Cluster.make ~extent_size:65536 tb in
      let app = c.Cluster.app in
      let proc = Svc.proc app in
      let img_size = 256 and batch = 4 in
      let data = Facedata.db ~img_size ~n:batch in
      (* provision a raw volume with the data *)
      let vol =
        ok_exn
          (Blockdev.create_vol app ~create_req:c.Cluster.create_vol_cap
             ~size:65536)
      in
      let wbuf = Process.alloc proc (Bytes.length data) in
      Membuf.write wbuf ~off:0 data;
      let src = ok_exn (Api.memory_create proc wbuf Perms.ro) in
      let seed_write =
        Flow.blk_write ~req:vol.Blockdev.write_req ~off:0
          ~len:(Bytes.length data) ~src
      in
      ok_exn (Flow.run app seed_write);
      (* GPU buffers *)
      let alloc size =
        ok_exn (Gpu_adaptor.alloc app ~alloc_req:c.Cluster.gpu_alloc_cap ~size)
      in
      let probe = alloc (batch * img_size) in
      let db = alloc (batch * img_size) in
      let out = alloc batch in
      ok_exn (Api.memory_copy proc ~src ~dst:probe.Gpu_adaptor.mem);
      let invoke_req =
        ok_exn
          (Gpu_adaptor.load app ~load_req:c.Cluster.gpu_load_cap
             ~name:Faceverify.kernel_name)
      in
      (* the pipeline: read from SSD into GPU memory, then run the kernel *)
      let pipeline =
        Flow.(
          blk_read ~req:vol.Blockdev.read_req ~off:0 ~len:(batch * img_size)
            ~dst:db.Gpu_adaptor.mem
          >>> gpu_kernel ~req:invoke_req ~items:batch
                ~bufs:[ probe; db; out ]
                ~user:[ Args.of_int batch; Args.of_int img_size ])
      in
      ok_exn (Flow.run app pipeline);
      (* verify the kernel really ran on disk data *)
      let out_local = Process.alloc proc batch in
      let dst = ok_exn (Api.memory_create proc out_local Perms.rw) in
      ok_exn (Api.memory_copy proc ~src:out.Gpu_adaptor.mem ~dst);
      check_bool "all matched" true
        (Bytes.equal
           (Membuf.read out_local ~off:0 ~len:batch)
           (Bytes.make batch '\001')))

let test_flow_error_propagates () =
  Tb.run (fun tb ->
      let c = Cluster.make tb in
      let app = c.Cluster.app in
      let proc = Svc.proc app in
      let vol =
        ok_exn
          (Blockdev.create_vol app ~create_req:c.Cluster.create_vol_cap
             ~size:4096)
      in
      let dst =
        ok_exn (Api.memory_create proc (Process.alloc proc 8192) Perms.rw)
      in
      (* out-of-bounds read: the stage's error continuation must fire *)
      let bad =
        Flow.blk_read ~req:vol.Blockdev.read_req ~off:0 ~len:8192 ~dst
      in
      match Flow.run app bad with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "oob pipeline reported success")

let test_flow_multi_stage_order () =
  (* Three writes through a chain must land in order; each stage writes a
     marker the next overlapping write partially overwrites. *)
  Tb.run (fun tb ->
      let c = Cluster.make tb in
      let app = c.Cluster.app in
      let proc = Svc.proc app in
      let vol =
        ok_exn
          (Blockdev.create_vol app ~create_req:c.Cluster.create_vol_cap
             ~size:4096)
      in
      let mk_src str =
        let b = Process.alloc proc (String.length str) in
        Membuf.write b ~off:0 (Bytes.of_string str);
        ok_exn (Api.memory_create proc b Perms.ro)
      in
      let pipeline =
        Flow.all
          [
            Flow.blk_write ~req:vol.Blockdev.write_req ~off:0 ~len:6
              ~src:(mk_src "AAAAAA");
            Flow.blk_write ~req:vol.Blockdev.write_req ~off:2 ~len:6
              ~src:(mk_src "BBBBBB");
            Flow.blk_write ~req:vol.Blockdev.write_req ~off:4 ~len:6
              ~src:(mk_src "CCCCCC");
          ]
      in
      ok_exn (Flow.run app pipeline);
      let rbuf = Process.alloc proc 10 in
      let dst = ok_exn (Api.memory_create proc rbuf Perms.rw) in
      let ok, _ =
        ok_exn
          (Svc.call_cont app ~svc:vol.Blockdev.read_req
             ~imms:(Blockdev.read_args ~off:0 ~len:10)
             ~place:(fun ~ok ~err -> [ dst; ok; err ])
             ())
      in
      check_bool "read ok" true ok;
      Alcotest.(check string)
        "stages applied in order" "AABBCCCCCC"
        (Bytes.to_string rbuf.Membuf.data))

let test_flow_async () =
  Tb.run (fun tb ->
      let c = Cluster.make tb in
      let app = c.Cluster.app in
      let proc = Svc.proc app in
      let vol =
        ok_exn
          (Blockdev.create_vol app ~create_req:c.Cluster.create_vol_cap
             ~size:4096)
      in
      let src = ok_exn (Api.memory_create proc (Process.alloc proc 64) Perms.ro) in
      let completed = ref None in
      ok_exn
        (Flow.run_async app
           (Flow.blk_write ~req:vol.Blockdev.write_req ~off:0 ~len:64 ~src)
           (fun r -> completed := Some r));
      check_bool "not yet complete" true (!completed = None);
      Engine.sleep (Time.ms 5);
      check_bool "completed ok" true (!completed = Some (Ok ())))

let test_flow_fork_join () =
  (* Scatter three writes to distinct volumes concurrently, continue only
     when all three landed, then read each back. *)
  Tb.run (fun tb ->
      let c = Cluster.make tb in
      let app = c.Cluster.app in
      let proc = Svc.proc app in
      let vols =
        List.init 3 (fun _ ->
            ok_exn
              (Blockdev.create_vol app ~create_req:c.Cluster.create_vol_cap
                 ~size:4096))
      in
      let payloads = [ "alpha!"; "bravo!"; "charli" ] in
      let srcs =
        List.map
          (fun s ->
            let b = Process.alloc proc 6 in
            Membuf.write b ~off:0 (Bytes.of_string s);
            ok_exn (Api.memory_create proc b Perms.ro))
          payloads
      in
      let branches =
        List.map2
          (fun vol src ->
            Flow.blk_write ~req:vol.Blockdev.write_req ~off:0 ~len:6 ~src)
          vols srcs
      in
      let t0 = Engine.now () in
      ok_exn (Flow.run app (Flow.fork_join branches));
      let elapsed = Engine.now () - t0 in
      (* branches overlapped: three serial writes would cost ~3x one *)
      let t1 = Engine.now () in
      ok_exn (Flow.run app (List.hd branches));
      let one = Engine.now () - t1 in
      check_bool
        (Printf.sprintf "parallel (%s) < 2.5x one write (%s)"
           (Time.to_string elapsed) (Time.to_string one))
        true
        (elapsed * 2 < one * 5);
      (* all three landed *)
      List.iteri
        (fun i vol ->
          let rbuf = Process.alloc proc 6 in
          let dst = ok_exn (Api.memory_create proc rbuf Perms.rw) in
          let ok, _ =
            ok_exn
              (Svc.call_cont app ~svc:vol.Blockdev.read_req
                 ~imms:(Blockdev.read_args ~off:0 ~len:6)
                 ~place:(fun ~ok ~err -> [ dst; ok; err ])
                 ())
          in
          check_bool "read ok" true ok;
          Alcotest.(check string)
            (Printf.sprintf "volume %d" i)
            (List.nth payloads i)
            (Bytes.to_string rbuf.Membuf.data))
        vols)

let test_flow_fork_join_error () =
  Tb.run (fun tb ->
      let c = Cluster.make tb in
      let app = c.Cluster.app in
      let proc = Svc.proc app in
      let vol =
        ok_exn
          (Blockdev.create_vol app ~create_req:c.Cluster.create_vol_cap
             ~size:4096)
      in
      let src = ok_exn (Api.memory_create proc (Process.alloc proc 64) Perms.ro) in
      let good = Flow.blk_write ~req:vol.Blockdev.write_req ~off:0 ~len:64 ~src in
      let dst = ok_exn (Api.memory_create proc (Process.alloc proc 8192) Perms.rw) in
      let bad = Flow.blk_read ~req:vol.Blockdev.read_req ~off:0 ~len:8192 ~dst in
      match Flow.run app (Flow.fork_join [ good; bad ]) with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "failing branch did not fail the join")

(* Two disaggregated GPUs chained peer-to-peer: GPU-1 unmasks the probe
   batch, pushes it straight into GPU-2's memory (gpu.push), and GPU-2
   runs face verification — the paper's "data goes first through a GPU
   and then an FPGA" scenario, with no application mediation between the
   devices. *)
let test_flow_gpu_to_gpu () =
  Tb.run (fun tb ->
      let setups = Tb.nodes_with_ctrls tb Tb.Ctrl_cpu [ "app"; "gpu1"; "gpu2" ] in
      let s_app = List.nth setups 0
      and s_g1 = List.nth setups 1
      and s_g2 = List.nth setups 2 in
      let app_proc = Tb.add_proc tb ~on:s_app.Tb.node ~ctrl:s_app.Tb.ctrl "app" in
      let app = Svc.create app_proc in
      let cfg = Fractos_net.Config.default in
      let mask = 0x55 in
      let unmask_kernel =
        {
          Dev.Gpu.k_name = "unmask";
          k_cost = (fun ~items -> items * 1000);
          k_run =
            (fun ~bufs ~imms ->
              match (bufs, imms) with
              | [ buf ], [ len; mask ] ->
                for i = 0 to len - 1 do
                  Membuf.write buf ~off:i
                    (Bytes.make 1
                       (Char.chr
                          (Char.code (Bytes.get buf.Membuf.data i) lxor mask)))
                done
              | _ -> failwith "unmask: bad args");
        }
      in
      let mk_gpu s name =
        let proc = Tb.add_proc tb ~on:s.Tb.node ~ctrl:s.Tb.ctrl name in
        let gpu = Dev.Gpu.create ~node:s.Tb.node ~config:cfg ~mem_bytes:(1 lsl 24) in
        Dev.Gpu.load_kernel gpu (Faceverify.kernel ~config:cfg);
        Dev.Gpu.load_kernel gpu unmask_kernel;
        let ad = Gpu_adaptor.start proc gpu in
        (proc, ad)
      in
      let g1_proc, g1 = mk_gpu s_g1 "gpu1-adaptor" in
      let g2_proc, g2 = mk_gpu s_g2 "gpu2-adaptor" in
      let grant_all proc ad =
        let alloc_r, load_r, _ = Gpu_adaptor.base_requests ad in
        ( Tb.grant ~src:proc ~dst:app_proc alloc_r,
          Tb.grant ~src:proc ~dst:app_proc load_r,
          Tb.grant ~src:proc ~dst:app_proc (Gpu_adaptor.push_request ad) )
      in
      let g1_alloc, g1_load, g1_push = grant_all g1_proc g1 in
      let g2_alloc, g2_load, _ = grant_all g2_proc g2 in
      let img_size = 256 and batch = 4 in
      let data_len = batch * img_size in
      (* buffers: masked probes on GPU-1; probe/db/out on GPU-2 *)
      let b1 = ok_exn (Gpu_adaptor.alloc app ~alloc_req:g1_alloc ~size:data_len) in
      let probe2 = ok_exn (Gpu_adaptor.alloc app ~alloc_req:g2_alloc ~size:data_len) in
      let db2 = ok_exn (Gpu_adaptor.alloc app ~alloc_req:g2_alloc ~size:data_len) in
      let out2 = ok_exn (Gpu_adaptor.alloc app ~alloc_req:g2_alloc ~size:batch) in
      let proc = Svc.proc app in
      (* upload the masked probes to GPU-1 and the database to GPU-2 *)
      let clear = Facedata.db ~img_size ~n:batch in
      let masked = Bytes.map (fun c -> Char.chr (Char.code c lxor mask)) clear in
      let up data dst =
        let b = Process.alloc proc (Bytes.length data) in
        Membuf.write b ~off:0 data;
        let m = ok_exn (Api.memory_create proc b Perms.ro) in
        ok_exn (Api.memory_copy proc ~src:m ~dst)
      in
      up masked b1.Gpu_adaptor.mem;
      up clear db2.Gpu_adaptor.mem;
      let unmask_req = ok_exn (Gpu_adaptor.load app ~load_req:g1_load ~name:"unmask") in
      let verify_req =
        ok_exn (Gpu_adaptor.load app ~load_req:g2_load ~name:Faceverify.kernel_name)
      in
      let pipeline =
        Flow.(
          gpu_kernel ~req:unmask_req ~items:batch ~bufs:[ b1 ]
            ~user:[ Args.of_int data_len; Args.of_int mask ]
          >>> stage (fun svc ~next ~err ->
                  Api.request_derive (Svc.proc svc) g1_push
                    ~imms:(Gpu_adaptor.push_args b1 ~len:data_len)
                    ~caps:[ probe2.Gpu_adaptor.mem; next; err ] ())
          >>> gpu_kernel ~req:verify_req ~items:batch
                ~bufs:[ probe2; db2; out2 ]
                ~user:[ Args.of_int batch; Args.of_int img_size ])
      in
      Fractos_net.Stats.reset (Fractos_net.Fabric.stats tb.Tb.fabric);
      ok_exn (Flow.run app pipeline);
      (* results: every unmasked probe matched the database *)
      let rbuf = Process.alloc proc batch in
      let dst = ok_exn (Api.memory_create proc rbuf Perms.rw) in
      ok_exn (Api.memory_copy proc ~src:out2.Gpu_adaptor.mem ~dst);
      check_bool "all matched after GPU->GPU hop" true
        (Bytes.equal rbuf.Membuf.data (Bytes.make batch '\001'));
      (* the probe batch moved gpu1 -> gpu2 directly *)
      let links = Fractos_net.Stats.per_link (Fractos_net.Fabric.stats tb.Tb.fabric) in
      let bytes a b =
        match List.assoc_opt (a, b) links with Some (_, n) -> n | None -> 0
      in
      check_bool "gpu1 -> gpu2 data" true (bytes "gpu1" "gpu2" >= data_len);
      (* only small control messages (invoke forwarding) touch the app's
         link to GPU-2 — the probe batch itself never does *)
      check_bool "no bulk data via the app" true
        (bytes "app" "gpu2" < data_len / 2))

(* ------------------------------------------------------------------ *)
(* RPC timeouts                                                        *)
(* ------------------------------------------------------------------ *)

let test_call_timeout () =
  Tb.run (fun tb ->
      let s = List.hd (Tb.nodes_with_ctrls tb Tb.Ctrl_cpu [ "n" ]) in
      let server_p = Tb.add_proc tb ~on:s.Tb.node ~ctrl:s.Tb.ctrl "server" in
      let client_p = Tb.add_proc tb ~on:s.Tb.node ~ctrl:s.Tb.ctrl "client" in
      let server = Svc.create server_p in
      let client = Svc.create client_p in
      (* a server that answers only after 1 ms *)
      Svc.handle server ~tag:"slow" (fun svc d ->
          Engine.sleep (Time.ms 1);
          Svc.reply svc d ~status:0 ());
      let slow = ok_exn (Api.request_create server_p ~tag:"slow" ()) in
      let slow_c = Tb.grant ~src:server_p ~dst:client_p slow in
      (* 100 us deadline: expires *)
      (match Svc.call client ~svc:slow_c ~timeout:(Time.us 100) () with
      | Error Error.Timeout -> ()
      | Ok _ -> Alcotest.fail "slow call met a 100us deadline"
      | Error e -> Alcotest.failf "unexpected: %s" (Error.to_string e));
      (* generous deadline: completes; the earlier late reply was dropped
         harmlessly by the pump *)
      match Svc.call client ~svc:slow_c ~timeout:(Time.ms 10) () with
      | Ok d -> check_int "status" 0 (Svc.status d)
      | Error e -> Alcotest.failf "unexpected: %s" (Error.to_string e))

(* ------------------------------------------------------------------ *)
(* Resource manager                                                    *)
(* ------------------------------------------------------------------ *)

let rm_setup tb =
  let a = Tb.add_host tb "alpha" in
  let b = Tb.add_host tb "beta" in
  let ca = Tb.add_ctrl tb ~on:a in
  let cb = Tb.add_ctrl tb ~on:b in
  (* "device" provider: a service whose base request the RM manages *)
  let dev = Tb.add_proc tb ~on:b ~ctrl:cb "device" in
  let dev_svc = Svc.create dev in
  Svc.handle dev_svc ~tag:"dev" (fun svc d -> Svc.reply svc d ~status:0 ());
  let dev_req = ok_exn (Api.request_create dev ~tag:"dev" ()) in
  let rm_proc = Tb.add_proc tb ~on:b ~ctrl:cb "resman" in
  let rm =
    Resman.start rm_proc
      ~resources:[ ("dev", Tb.grant ~src:dev ~dst:rm_proc dev_req, 2) ]
  in
  (a, ca, rm, rm_proc)

let new_client tb node ctrl rm rm_proc name =
  let proc = Tb.add_proc tb ~on:node ~ctrl name in
  let svc = Svc.create proc in
  let rm_cap = Tb.grant ~src:rm_proc ~dst:proc (Resman.base_request rm) in
  (proc, svc, rm_cap)

let test_rm_acquire_use_release () =
  Tb.run (fun tb ->
      let a, ca, rm, rm_proc = rm_setup tb in
      let _, svc, rm_cap = new_client tb a ca rm rm_proc "client" in
      let _id, lease = ok_exn (Resman.acquire svc ~rm:rm_cap ~name:"dev") in
      check_int "one lease out" 1 (Resman.leases rm ~name:"dev");
      (* the leased capability works like the base request *)
      let d = ok_exn (Svc.call svc ~svc:lease ()) in
      check_int "service reachable through lease" 0 (Svc.status d);
      (* release: the manager's delegation monitor reclaims it *)
      ok_exn (Resman.release svc lease);
      Engine.sleep (Time.ms 2);
      check_int "lease reclaimed" 0 (Resman.leases rm ~name:"dev");
      check_int "reclaim count" 1 (Resman.reclaimed rm))

let test_rm_capacity () =
  Tb.run (fun tb ->
      let a, ca, rm, rm_proc = rm_setup tb in
      let _, s1, c1 = new_client tb a ca rm rm_proc "c1" in
      let _, s2, c2 = new_client tb a ca rm rm_proc "c2" in
      let _, s3, c3 = new_client tb a ca rm rm_proc "c3" in
      let _ = ok_exn (Resman.acquire s1 ~rm:c1 ~name:"dev") in
      let _, lease2 = ok_exn (Resman.acquire s2 ~rm:c2 ~name:"dev") in
      (match Resman.acquire s3 ~rm:c3 ~name:"dev" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "capacity exceeded");
      (* freeing one lease restores capacity *)
      ok_exn (Resman.release s2 lease2);
      Engine.sleep (Time.ms 2);
      let _ = ok_exn (Resman.acquire s3 ~rm:c3 ~name:"dev") in
      check_int "two leases out" 2 (Resman.leases rm ~name:"dev"))

let test_rm_client_death_reclaims () =
  Tb.run (fun tb ->
      let a, ca, rm, rm_proc = rm_setup tb in
      let proc, svc, rm_cap = new_client tb a ca rm rm_proc "doomed" in
      let _ = ok_exn (Resman.acquire svc ~rm:rm_cap ~name:"dev") in
      check_int "one lease" 1 (Resman.leases rm ~name:"dev");
      Controller.fail_process ca proc;
      Engine.sleep (Time.ms 3);
      check_int "death reclaims the lease" 0 (Resman.leases rm ~name:"dev");
      check_int "reclaim count" 1 (Resman.reclaimed rm))

let test_rm_admin_revocation () =
  Tb.run (fun tb ->
      let a, ca, rm, rm_proc = rm_setup tb in
      let _, svc, rm_cap = new_client tb a ca rm rm_proc "client" in
      let id, lease = ok_exn (Resman.acquire svc ~rm:rm_cap ~name:"dev") in
      check_bool "admin revoke" true (Resman.revoke_lease rm ~name:"dev" ~lease_id:id);
      Engine.sleep (Time.ms 2);
      check_int "lease gone" 0 (Resman.leases rm ~name:"dev");
      (* the client's capability is now dead *)
      match Svc.call svc ~svc:lease () with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "revoked lease still usable")

let test_rm_unknown_resource () =
  Tb.run (fun tb ->
      let a, ca, rm, rm_proc = rm_setup tb in
      let _, svc, rm_cap = new_client tb a ca rm rm_proc "client" in
      match Resman.acquire svc ~rm:rm_cap ~name:"nope" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "acquired unknown resource")

(* ------------------------------------------------------------------ *)
(* Replica failover front                                              *)
(* ------------------------------------------------------------------ *)

let replica_setup tb ~n =
  let setups =
    Tb.nodes_with_ctrls tb Tb.Ctrl_cpu
      ("client" :: List.init n (fun i -> Printf.sprintf "r%d" i))
  in
  let s_client = List.hd setups in
  let client_proc =
    Tb.add_proc tb ~on:s_client.Tb.node ~ctrl:s_client.Tb.ctrl "client"
  in
  let client = Svc.create client_proc in
  let replicas =
    List.mapi
      (fun i s ->
        let proc =
          Tb.add_proc tb ~on:s.Tb.node ~ctrl:s.Tb.ctrl
            (Printf.sprintf "replica%d" i)
        in
        let svc = Svc.create proc in
        Svc.handle svc ~tag:"svc" (fun svc d ->
            Svc.reply svc d ~status:0 ~imms:[ Args.of_int i ] ());
        let req = ok_exn (Api.request_create proc ~tag:"svc" ()) in
        (proc, Tb.grant ~src:proc ~dst:client_proc req))
      (List.tl setups)
  in
  (client, replicas)

let test_replica_normal_operation () =
  Tb.run (fun tb ->
      let client, replicas = replica_setup tb ~n:3 in
      let front =
        ok_exn (Replica.create client ~replicas:(List.map snd replicas))
      in
      let d = ok_exn (Replica.call front ()) in
      check_int "served by replica 0" 0 (Args.to_int (List.hd (Svc.payload_imms d)));
      check_int "all live" 3 (Replica.live front))

let test_replica_failover_on_death () =
  Tb.run (fun tb ->
      let client, replicas = replica_setup tb ~n:3 in
      let front =
        ok_exn (Replica.create client ~replicas:(List.map snd replicas))
      in
      ignore (ok_exn (Replica.call front ()));
      (* kill the active replica: failure translation fires the client's
         monitor, and the next call lands on replica 1 *)
      let r0, _ = List.hd replicas in
      Controller.fail_process (Option.get (Process.controller r0)) r0;
      Engine.sleep (Time.ms 2);
      check_int "one down" 2 (Replica.live front);
      let d = ok_exn (Replica.call front ()) in
      check_int "served by replica 1" 1
        (Args.to_int (List.hd (Svc.payload_imms d)));
      (* kill the second as well *)
      let r1, _ = List.nth replicas 1 in
      Controller.fail_process (Option.get (Process.controller r1)) r1;
      Engine.sleep (Time.ms 2);
      let d = ok_exn (Replica.call front ()) in
      check_int "served by replica 2" 2
        (Args.to_int (List.hd (Svc.payload_imms d))))

let test_replica_all_dead () =
  Tb.run (fun tb ->
      let client, replicas = replica_setup tb ~n:2 in
      let front =
        ok_exn (Replica.create client ~replicas:(List.map snd replicas))
      in
      List.iter
        (fun (r, _) ->
          Controller.fail_process (Option.get (Process.controller r)) r)
        replicas;
      Engine.sleep (Time.ms 2);
      match Replica.call front () with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "call succeeded with every replica dead")

let test_replica_inflight_race () =
  (* the replica dies while a call is in flight: the deadline fires, the
     front marks it suspect and retries on the backup *)
  Tb.run (fun tb ->
      let client, replicas = replica_setup tb ~n:2 in
      let front =
        ok_exn (Replica.create client ~replicas:(List.map snd replicas))
      in
      let r0, _ = List.hd replicas in
      Engine.spawn (fun () ->
          Engine.sleep (Time.us 5);
          Controller.fail_process (Option.get (Process.controller r0)) r0);
      let d = ok_exn (Replica.call front ()) in
      check_int "failed over mid-call" 1
        (Args.to_int (List.hd (Svc.payload_imms d))))

(* ------------------------------------------------------------------ *)
(* Full inference ring (Fig. 2 with the output leg)                    *)
(* ------------------------------------------------------------------ *)

let inference_setup tb ~img_size ~n_images ~max_batch ~depth =
  let c =
    Cluster.make
      ~extent_size:(max 65536 (n_images * img_size))
      ~write_through:true tb
  in
  let db = Facedata.db ~img_size ~n:n_images in
  ok_exn
    (Faceverify.populate_db c.Cluster.app ~fs:c.Cluster.fs_cap ~name:"facedb"
       ~content:db);
  let inf =
    ok_exn
      (Inference.setup c.Cluster.app ~fs:c.Cluster.fs_cap
         ~gpu_alloc:c.Cluster.gpu_alloc_cap ~gpu_load:c.Cluster.gpu_load_cap
         ~input_db:"facedb" ~output_file:"results" ~img_size ~max_batch ~depth)
  in
  (c, inf)

let test_inference_ring_end_to_end () =
  Tb.run (fun tb ->
      let img_size = 512 and n_images = 64 in
      let c, inf = inference_setup tb ~img_size ~n_images ~max_batch:8 ~depth:1 in
      let batch = 8 and start_id = 16 in
      let probes =
        Facedata.probe_batch ~img_size ~start_id ~batch ~impostor_every:3
      in
      let flags = ok_exn (Inference.infer inf ~start_id ~batch ~probes) in
      let expected = Facedata.expected_matches ~batch ~impostor_every:3 in
      check_bool "client response correct" true (Bytes.equal flags expected);
      (* the results were also persisted — read them back through the FS *)
      let app = c.Cluster.app in
      let proc = Svc.proc app in
      let h = ok_exn (Fs.open_ app ~fs:c.Cluster.fs_cap ~name:"results" Fs.Fs_ro) in
      let rbuf = Process.alloc proc batch in
      let dst = ok_exn (Api.memory_create proc rbuf Perms.rw) in
      ok_exn
        (Fs.read app h
           ~off:(Inference.output_record_offset inf ~slot:0)
           ~len:batch ~dst);
      check_bool "results persisted via composed write" true
        (Bytes.equal rbuf.Membuf.data expected))

let test_inference_output_bypasses_app_and_fs () =
  (* The composed output write must move the result bytes from the GPU
     node to the storage node WITHOUT crossing the app or FS nodes. *)
  Tb.run (fun tb ->
      let img_size = 512 and n_images = 64 in
      let c, inf = inference_setup tb ~img_size ~n_images ~max_batch:8 ~depth:1 in
      let batch = 8 in
      let probes =
        Facedata.probe_batch ~img_size ~start_id:0 ~batch ~impostor_every:0
      in
      Fractos_net.Stats.reset (Cluster.stats c);
      ignore (ok_exn (Inference.infer inf ~start_id:0 ~batch ~probes));
      let links = Fractos_net.Stats.per_link (Cluster.stats c) in
      let bytes a b =
        match List.assoc_opt (a, b) links with
        | Some (_, bytes) -> bytes
        | None -> 0
      in
      check_bool "gpu -> storage data (SSD pulled from GPU)" true
        (bytes "gpu" "storage" >= batch);
      (* no result-sized data flows gpu -> fs node *)
      check_bool "fs node out of the output data path" true
        (bytes "gpu" "fs" = 0);
      (* input leg still storage -> gpu direct *)
      check_bool "storage -> gpu input data" true
        (bytes "storage" "gpu" >= batch * img_size))

let test_inference_concurrent () =
  Tb.run (fun tb ->
      let img_size = 256 and n_images = 64 in
      let _, inf = inference_setup tb ~img_size ~n_images ~max_batch:8 ~depth:3 in
      let done_count = ref 0 in
      for k = 0 to 5 do
        Engine.spawn (fun () ->
            let start_id = k * 8 in
            let probes =
              Facedata.probe_batch ~img_size ~start_id ~batch:8
                ~impostor_every:0
            in
            let flags = ok_exn (Inference.infer inf ~start_id ~batch:8 ~probes) in
            if Bytes.equal flags (Bytes.make 8 '\001') then incr done_count)
      done;
      Engine.sleep (Time.s 2);
      check_int "all six correct" 6 !done_count)

(* ------------------------------------------------------------------ *)
(* Edge-case sweep                                                     *)
(* ------------------------------------------------------------------ *)

let test_flow_all_empty () =
  match Flow.all [] with
  | _ -> Alcotest.fail "empty pipeline accepted"
  | exception Invalid_argument _ -> ()

let test_dax_range_spanning_extents () =
  Tb.run (fun tb ->
      let c = Cluster.make ~extent_size:4096 tb in
      let app = c.Cluster.app in
      ok_exn (Fs.create app ~fs:c.Cluster.fs_cap ~name:"f" ~size:16384);
      let dh = ok_exn (Fs.open_ app ~fs:c.Cluster.fs_cap ~name:"f" Fs.Dax_ro) in
      check_int "four extents delegated" 4 (Array.length dh.Fs.h_dax_read);
      (* intra-extent ranges resolve; spanning ones are rejected *)
      check_bool "intra" true
        (Fs.read_request_args dh ~off:4096 ~len:4096 <> None);
      check_bool "spanning" true
        (Fs.read_request_args dh ~off:2048 ~len:4096 = None))

let test_gpu_push_bounds () =
  Tb.run (fun tb ->
      let c = Cluster.make tb in
      let app = c.Cluster.app in
      let proc = Svc.proc app in
      let buf = ok_exn (Gpu_adaptor.alloc app ~alloc_req:c.Cluster.gpu_alloc_cap ~size:64) in
      let push =
        Tb.grant
          ~src:(Svc.proc (Gpu_adaptor.svc c.Cluster.gpu_adaptor))
          ~dst:proc
          (Gpu_adaptor.push_request c.Cluster.gpu_adaptor)
      in
      let dst = ok_exn (Api.memory_create proc (Process.alloc proc 256) Perms.rw) in
      (* pushing more than the buffer holds takes the error path *)
      match
        Svc.call_cont app ~svc:push
          ~imms:(Gpu_adaptor.push_args buf ~len:256)
          ~place:(fun ~ok ~err -> [ dst; ok; err ])
          ()
      with
      | Ok (false, _) -> ()
      | Ok (true, _) -> Alcotest.fail "oversized push succeeded"
      | Error e -> Alcotest.failf "unexpected: %s" (Core.Error.to_string e))

let test_error_printing () =
  List.iter
    (fun e -> check_bool "non-empty" true (String.length (Error.to_string e) > 0))
    [
      Error.Invalid_cap; Error.Revoked; Error.Stale; Error.Perm_denied;
      Error.Bounds; Error.Bad_argument "x"; Error.Provider_dead;
      Error.Ctrl_unreachable; Error.Quota_exceeded; Error.Timeout;
    ];
  match Error.ok_exn (Error Error.Revoked) with
  | _ -> Alcotest.fail "ok_exn did not raise"
  | exception Error.Fractos Error.Revoked -> ()

let () =
  Alcotest.run "fractos_extensions"
    [
      ( "flow",
        [
          Alcotest.test_case "ssd->gpu pipeline" `Quick test_flow_ssd_to_gpu;
          Alcotest.test_case "error propagates" `Quick
            test_flow_error_propagates;
          Alcotest.test_case "multi-stage order" `Quick
            test_flow_multi_stage_order;
          Alcotest.test_case "async completion" `Quick test_flow_async;
          Alcotest.test_case "gpu-to-gpu peer pipeline" `Quick
            test_flow_gpu_to_gpu;
          Alcotest.test_case "fork/join" `Quick test_flow_fork_join;
          Alcotest.test_case "fork/join error" `Quick test_flow_fork_join_error;
        ] );
      ("timeout", [ Alcotest.test_case "call deadline" `Quick test_call_timeout ]);
      ( "edges",
        [
          Alcotest.test_case "flow empty" `Quick test_flow_all_empty;
          Alcotest.test_case "dax extent ranges" `Quick
            test_dax_range_spanning_extents;
          Alcotest.test_case "gpu push bounds" `Quick test_gpu_push_bounds;
          Alcotest.test_case "error printing" `Quick test_error_printing;
        ] );
      ( "resman",
        [
          Alcotest.test_case "acquire/use/release" `Quick
            test_rm_acquire_use_release;
          Alcotest.test_case "capacity" `Quick test_rm_capacity;
          Alcotest.test_case "client death reclaims" `Quick
            test_rm_client_death_reclaims;
          Alcotest.test_case "admin revocation" `Quick test_rm_admin_revocation;
          Alcotest.test_case "unknown resource" `Quick test_rm_unknown_resource;
        ] );
      ( "replica",
        [
          Alcotest.test_case "normal operation" `Quick
            test_replica_normal_operation;
          Alcotest.test_case "failover on death" `Quick
            test_replica_failover_on_death;
          Alcotest.test_case "all dead" `Quick test_replica_all_dead;
          Alcotest.test_case "in-flight race" `Quick test_replica_inflight_race;
        ] );
      ( "inference-ring",
        [
          Alcotest.test_case "end to end with persisted output" `Quick
            test_inference_ring_end_to_end;
          Alcotest.test_case "output bypasses app and fs" `Quick
            test_inference_output_bypasses_app_and_fs;
          Alcotest.test_case "concurrent" `Quick test_inference_concurrent;
        ] );
    ]
