(* Tests for the baseline stacks (rCUDA, NVMe-oF, NFS), the pipeline
   coordination models, and the end-to-end baseline application. *)

open Fractos_sim
module Net = Fractos_net
module Core = Fractos_core
module Dev = Fractos_device
module Tb = Fractos_testbed.Testbed
module B = Fractos_baselines
module Facedata = Fractos_workloads.Facedata
open Fractos_services

let cfg = Net.Config.default
let check_bool = Alcotest.(check bool)


let with_fabric f =
  Engine.run (fun () ->
      let fab = Net.Fabric.create () in
      f fab)

(* ------------------------------------------------------------------ *)
(* rCUDA                                                              *)
(* ------------------------------------------------------------------ *)

let test_rcuda_roundtrip () =
  with_fabric (fun fab ->
      let client = Net.Fabric.add_node fab ~name:"client" Net.Node.Host_cpu in
      let gpu_node = Net.Fabric.add_node fab ~name:"gpu" Net.Node.Host_cpu in
      let gpu = Dev.Gpu.create ~node:gpu_node ~config:cfg ~mem_bytes:(1 lsl 20) in
      Dev.Gpu.load_kernel gpu (Faceverify.kernel ~config:cfg);
      let rc = B.Rcuda.connect fab ~client gpu in
      let img_size = 256 and batch = 4 in
      let data = Facedata.db ~img_size ~n:batch in
      let probe = Result.get_ok (B.Rcuda.malloc rc (batch * img_size)) in
      let db = Result.get_ok (B.Rcuda.malloc rc (batch * img_size)) in
      let out = Result.get_ok (B.Rcuda.malloc rc batch) in
      B.Rcuda.memcpy_h2d rc ~src:data ~dst:probe;
      B.Rcuda.memcpy_h2d rc ~src:data ~dst:db;
      (match
         B.Rcuda.launch_sync rc ~name:Faceverify.kernel_name ~items:batch
           ~bufs:[ probe; db; out ] ~imms:[ batch; img_size ]
       with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      let flags = B.Rcuda.memcpy_d2h rc ~src:out ~len:batch in
      check_bool "all match" true (Bytes.equal flags (Bytes.make batch '\001')))

let test_rcuda_per_call_cost () =
  with_fabric (fun fab ->
      let client = Net.Fabric.add_node fab ~name:"client" Net.Node.Host_cpu in
      let gpu_node = Net.Fabric.add_node fab ~name:"gpu" Net.Node.Host_cpu in
      let gpu = Dev.Gpu.create ~node:gpu_node ~config:cfg ~mem_bytes:(1 lsl 20) in
      let rc = B.Rcuda.connect fab ~client gpu in
      let t0 = Engine.now () in
      let _ = B.Rcuda.malloc rc 64 in
      let elapsed = Engine.now () - t0 in
      (* two marshalling costs + wire RTT + driver alloc *)
      check_bool "driver call costs tens of us" true
        (elapsed >= 2 * cfg.Net.Config.rcuda_call_overhead
        && elapsed < Time.us 60))

(* ------------------------------------------------------------------ *)
(* NVMe-oF                                                            *)
(* ------------------------------------------------------------------ *)

let nvmeof_setup fab =
  let initiator = Net.Fabric.add_node fab ~name:"init" Net.Node.Host_cpu in
  let target = Net.Fabric.add_node fab ~name:"target" Net.Node.Wimpy_cpu in
  let ssd = Dev.Nvme.create ~node:target ~config:cfg ~capacity:(1 lsl 24) in
  let vol = Result.get_ok (Dev.Nvme.create_volume ssd ~size:(1 lsl 22)) in
  (initiator, ssd, vol)

let test_nvmeof_roundtrip () =
  with_fabric (fun fab ->
      let initiator, ssd, vol = nvmeof_setup fab in
      let nv = B.Nvmeof.connect fab ~initiator ssd vol in
      let data = Bytes.init 8192 (fun i -> Char.chr (i land 0xff)) in
      (match B.Nvmeof.write nv ~off:4096 data with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      let back = Result.get_ok (B.Nvmeof.read_nocache nv ~off:4096 ~len:8192) in
      check_bool "roundtrip" true (Bytes.equal data back))

let test_nvmeof_write_faster_than_read () =
  (* §6.4: the NVMe-oF device absorbs writes through the cache. *)
  with_fabric (fun fab ->
      let initiator, ssd, vol = nvmeof_setup fab in
      let nv = B.Nvmeof.connect fab ~initiator ssd vol in
      let data = Bytes.make 4096 'x' in
      let t0 = Engine.now () in
      ignore (B.Nvmeof.write nv ~off:0 data);
      let w = Engine.now () - t0 in
      let t1 = Engine.now () in
      ignore (B.Nvmeof.read_nocache nv ~off:(1 lsl 20) ~len:4096);
      let r = Engine.now () - t1 in
      check_bool "write absorbed by cache" true (w < r))

let test_nvmeof_read_ahead () =
  with_fabric (fun fab ->
      let initiator, ssd, vol = nvmeof_setup fab in
      let nv = B.Nvmeof.connect fab ~initiator ssd vol in
      (* read-ahead is adaptive: the first read fetches exactly its length,
         the second (detected as sequential) prefetches a window, and the
         third is served from the cache *)
      let t0 = Engine.now () in
      ignore (B.Nvmeof.read nv ~off:0 ~len:4096);
      let miss = Engine.now () - t0 in
      ignore (B.Nvmeof.read nv ~off:4096 ~len:4096);
      let t1 = Engine.now () in
      ignore (B.Nvmeof.read nv ~off:8192 ~len:4096);
      let hit = Engine.now () - t1 in
      check_bool "read-ahead hit is much cheaper" true (hit * 3 < miss))

let test_nvmeof_write_invalidates_cache () =
  with_fabric (fun fab ->
      let initiator, ssd, vol = nvmeof_setup fab in
      let nv = B.Nvmeof.connect fab ~initiator ssd vol in
      ignore (B.Nvmeof.read nv ~off:0 ~len:4096);
      ignore (B.Nvmeof.write nv ~off:4096 (Bytes.make 4096 'Z'));
      let back = Result.get_ok (B.Nvmeof.read nv ~off:4096 ~len:4096) in
      check_bool "fresh data after overlapping write" true
        (Bytes.equal back (Bytes.make 4096 'Z')))

(* ------------------------------------------------------------------ *)
(* NFS                                                                *)
(* ------------------------------------------------------------------ *)

let test_nfs_proxies_data () =
  with_fabric (fun fab ->
      let client = Net.Fabric.add_node fab ~name:"client" Net.Node.Host_cpu in
      let server = Net.Fabric.add_node fab ~name:"server" Net.Node.Host_cpu in
      let target = Net.Fabric.add_node fab ~name:"target" Net.Node.Wimpy_cpu in
      let ssd = Dev.Nvme.create ~node:target ~config:cfg ~capacity:(1 lsl 24) in
      let vol = Result.get_ok (Dev.Nvme.create_volume ssd ~size:(1 lsl 22)) in
      let backing = B.Nvmeof.connect fab ~initiator:server ssd vol in
      let nfs = B.Nfs.mount fab ~client ~server ~backing in
      let data = Bytes.init 10_000 (fun i -> Char.chr ((i * 3) land 0xff)) in
      (match B.Nfs.write nfs ~off:100 data with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      let back = Result.get_ok (B.Nfs.read nfs ~off:100 ~len:10_000) in
      check_bool "roundtrip through two tiers" true (Bytes.equal data back);
      (* the data crossed both links: target->server and server->client *)
      let links = Net.Stats.per_link (Net.Fabric.stats fab) in
      let link a b =
        try fst (List.assoc (a, b) links) with Not_found -> 0
      in
      check_bool "target->server data" true (link "target" "server" > 0);
      check_bool "server->client data" true (link "server" "client" > 0))

(* ------------------------------------------------------------------ *)
(* Pipelines                                                          *)
(* ------------------------------------------------------------------ *)

let pipeline_setup tb ~n_stages ~max_size =
  let names =
    "app" :: List.init n_stages (fun i -> Printf.sprintf "stage%d" i)
  in
  let setups = Tb.nodes_with_ctrls tb Tb.Ctrl_cpu names in
  let s_app = List.hd setups in
  let app_proc = Tb.add_proc tb ~on:s_app.Tb.node ~ctrl:s_app.Tb.ctrl "app" in
  let app = Svc.create app_proc in
  let stage_procs =
    List.mapi
      (fun i s -> Tb.add_proc tb ~on:s.Tb.node ~ctrl:s.Tb.ctrl
          (Printf.sprintf "stage%d" i))
      (List.tl setups)
  in
  B.Pipeline.deploy ~app ~stages:stage_procs ~max_size ~grant:(fun ~src ~dst cid ->
      Tb.grant ~src ~dst cid)

let run_mode_and_verify tb mode =
  let p = pipeline_setup tb ~n_stages:3 ~max_size:65536 in
  let input = Bytes.init 4096 (fun i -> Char.chr ((i * 7) land 0xff)) in
  B.Pipeline.set_input p input;
  (match B.Pipeline.run p mode ~size:4096 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "pipeline: %s" (Core.Error.to_string e));
  check_bool
    (B.Pipeline.mode_name mode ^ " transformed through all stages")
    true
    (Bytes.equal
       (B.Pipeline.last_output p ~size:4096)
       (B.Pipeline.expected_output p ~input))

let test_pipeline_star () = Tb.run (fun tb -> run_mode_and_verify tb B.Pipeline.Star)
let test_pipeline_fast_star () =
  Tb.run (fun tb -> run_mode_and_verify tb B.Pipeline.Fast_star)
let test_pipeline_chain () = Tb.run (fun tb -> run_mode_and_verify tb B.Pipeline.Chain)

let time_mode tb mode ~size =
  let p = pipeline_setup tb ~n_stages:4 ~max_size:(1 lsl 20) in
  B.Pipeline.set_input p (Bytes.make size 'a');
  let t0 = Engine.now () in
  (match B.Pipeline.run p mode ~size with
  | Ok () -> ()
  | Error e -> Alcotest.failf "pipeline: %s" (Core.Error.to_string e));
  Engine.now () - t0

let test_pipeline_ordering_large () =
  (* Fig. 8 at large sizes: data-path optimization dominates:
     star > fast-star >= chain. *)
  Tb.run (fun tb ->
      let size = 65536 in
      let star = time_mode tb B.Pipeline.Star ~size in
      let fast = time_mode tb B.Pipeline.Fast_star ~size in
      let chain = time_mode tb B.Pipeline.Chain ~size in
      check_bool
        (Printf.sprintf "star(%s) > fast-star(%s)" (Time.to_string star)
           (Time.to_string fast))
        true (star > fast);
      check_bool
        (Printf.sprintf "fast-star(%s) > chain(%s)" (Time.to_string fast)
           (Time.to_string chain))
        true (fast > chain))

let test_pipeline_ordering_small () =
  (* Fig. 8 at small sizes: control-path optimization dominates:
     chain clearly beats both stars. *)
  Tb.run (fun tb ->
      let size = 256 in
      let star = time_mode tb B.Pipeline.Star ~size in
      let fast = time_mode tb B.Pipeline.Fast_star ~size in
      let chain = time_mode tb B.Pipeline.Chain ~size in
      check_bool "chain fastest" true (chain < fast && chain < star))

let test_star_central_node_bottleneck () =
  (* §2: the centralized model makes the app node "the center of a
     star-shaped topology", a communication bottleneck. Under the star
     model the app's NIC carries every byte twice; under the chain it only
     carries the first injection. *)
  let util_of mode =
    Tb.run (fun tb ->
        let p = pipeline_setup tb ~n_stages:4 ~max_size:(1 lsl 20) in
        let size = 262_144 in
        B.Pipeline.set_input p (Bytes.make size 'x');
        let t0 = Engine.now () in
        (match B.Pipeline.run p mode ~size with
        | Ok () -> ()
        | Error e -> Alcotest.failf "pipeline: %s" (Core.Error.to_string e));
        let elapsed = Engine.now () - t0 in
        let us = Net.Fabric.utilization tb.Tb.fabric ~elapsed:(Engine.now ()) in
        ignore elapsed;
        let app = List.find (fun u -> u.Net.Fabric.u_node = "app") us in
        app.Net.Fabric.u_tx)
  in
  let star = util_of B.Pipeline.Star in
  let chain = util_of B.Pipeline.Chain in
  check_bool
    (Printf.sprintf "star app-node TX (%.2f) >> chain (%.2f)" star chain)
    true
    (star > 2. *. chain)

(* ------------------------------------------------------------------ *)
(* End-to-end baseline                                                *)
(* ------------------------------------------------------------------ *)

let test_faceverify_baseline_correct () =
  with_fabric (fun fab ->
      let frontend = Net.Fabric.add_node fab ~name:"frontend" Net.Node.Host_cpu in
      let nfs_server = Net.Fabric.add_node fab ~name:"nfs" Net.Node.Host_cpu in
      let target = Net.Fabric.add_node fab ~name:"target" Net.Node.Wimpy_cpu in
      let gpu_node = Net.Fabric.add_node fab ~name:"gpu" Net.Node.Host_cpu in
      let ssd = Dev.Nvme.create ~node:target ~config:cfg ~capacity:(1 lsl 26) in
      let gpu = Dev.Gpu.create ~node:gpu_node ~config:cfg ~mem_bytes:(1 lsl 26) in
      Dev.Gpu.load_kernel gpu (Faceverify.kernel ~config:cfg);
      let img_size = 1024 and n = 64 in
      let db = Facedata.db ~img_size ~n in
      let fv =
        Result.get_ok
          (B.Faceverify_baseline.setup ~fabric:fab ~frontend ~nfs_server ~ssd
             ~gpu ~db ~img_size ~max_batch:16 ~depth:2)
      in
      let batch = 8 and start_id = 4 in
      let probes =
        Facedata.probe_batch ~img_size ~start_id ~batch ~impostor_every:3
      in
      let flags =
        Result.get_ok (B.Faceverify_baseline.verify fv ~start_id ~batch ~probes)
      in
      check_bool "ground truth" true
        (Bytes.equal flags (Facedata.expected_matches ~batch ~impostor_every:3));
      (* the data path really is three network transfers *)
      let links = Net.Stats.per_link (Net.Fabric.stats fab) in
      let has a b = List.mem_assoc (a, b) links in
      check_bool "target->nfs" true (has "target" "nfs");
      check_bool "nfs->frontend" true (has "nfs" "frontend");
      check_bool "frontend->gpu" true (has "frontend" "gpu"))

let () =
  Alcotest.run "fractos_baselines"
    [
      ( "rcuda",
        [
          Alcotest.test_case "roundtrip" `Quick test_rcuda_roundtrip;
          Alcotest.test_case "per-call cost" `Quick test_rcuda_per_call_cost;
        ] );
      ( "nvmeof",
        [
          Alcotest.test_case "roundtrip" `Quick test_nvmeof_roundtrip;
          Alcotest.test_case "write cache" `Quick
            test_nvmeof_write_faster_than_read;
          Alcotest.test_case "read-ahead" `Quick test_nvmeof_read_ahead;
          Alcotest.test_case "write invalidates" `Quick
            test_nvmeof_write_invalidates_cache;
        ] );
      ("nfs", [ Alcotest.test_case "proxies data" `Quick test_nfs_proxies_data ]);
      ( "pipeline",
        [
          Alcotest.test_case "star correct" `Quick test_pipeline_star;
          Alcotest.test_case "fast-star correct" `Quick test_pipeline_fast_star;
          Alcotest.test_case "chain correct" `Quick test_pipeline_chain;
          Alcotest.test_case "ordering large (Fig 8)" `Quick
            test_pipeline_ordering_large;
          Alcotest.test_case "ordering small (Fig 8)" `Quick
            test_pipeline_ordering_small;
          Alcotest.test_case "star central-node bottleneck" `Quick
            test_star_central_node_bottleneck;
        ] );
      ( "faceverify-baseline",
        [
          Alcotest.test_case "correct + 3 data hops" `Quick
            test_faceverify_baseline_correct;
        ] );
    ]
