(* Round-trip and size-agreement tests for the binary wire codec. *)

open Fractos_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* generators *)

let addr_gen =
  QCheck.Gen.(
    map3
      (fun c e o -> { State.a_ctrl = c; a_epoch = e; a_oid = o })
      (int_bound 0xffff) (int_bound 0xffff) (int_bound 0xfffffff))

let imm_gen =
  QCheck.Gen.(map Bytes.of_string (string_size ~gen:printable (int_bound 64)))

let imms_gen = QCheck.Gen.(list_size (int_bound 6) imm_gen)

let caps_gen =
  QCheck.Gen.(list_size (int_bound 6) (pair addr_gen bool))

let tag_gen = QCheck.Gen.(string_size ~gen:printable (int_range 1 24))

let encode_to_string f v =
  let b = Buffer.create 64 in
  f b v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Round trips                                                        *)
(* ------------------------------------------------------------------ *)

let prop_addr_roundtrip =
  QCheck.Test.make ~name:"addr roundtrip" ~count:200 (QCheck.make addr_gen)
    (fun a ->
      let s = encode_to_string Codec.encode_addr a in
      let a', off = Codec.decode_addr s 0 in
      State.addr_equal a a' && off = String.length s && off = Codec.addr_size)

let prop_perms_roundtrip =
  QCheck.Test.make ~name:"perms roundtrip" ~count:20
    (QCheck.make
       QCheck.Gen.(oneofl [ Perms.rw; Perms.ro; Perms.wo; Perms.none ]))
    (fun p ->
      let s = encode_to_string Codec.encode_perms p in
      let p', off = Codec.decode_perms s 0 in
      p = p' && off = 1)

let prop_imms_roundtrip =
  QCheck.Test.make ~name:"imms roundtrip + size agreement" ~count:200
    (QCheck.make imms_gen) (fun imms ->
      let s = encode_to_string Codec.encode_imms imms in
      let imms', off = Codec.decode_imms s 0 in
      List.length imms = List.length imms'
      && List.for_all2 Bytes.equal imms imms'
      && off = String.length s
      && String.length s = Codec.imms_size imms)

let prop_caps_roundtrip =
  QCheck.Test.make ~name:"caps roundtrip + size agreement" ~count:200
    (QCheck.make caps_gen) (fun caps ->
      let s = encode_to_string Codec.encode_caps caps in
      let caps', off = Codec.decode_caps s 0 in
      List.length caps = List.length caps'
      && List.for_all2
           (fun (a, m) (a', m') -> State.addr_equal a a' && m = m')
           caps caps'
      && off = String.length s
      && String.length s = 2 + Codec.caps_size (List.length caps))

let prop_request_roundtrip =
  QCheck.Test.make ~name:"request descriptor roundtrip + size" ~count:200
    (QCheck.make QCheck.Gen.(pair (pair tag_gen addr_gen) (pair imms_gen caps_gen)))
    (fun ((tag, target), (imms, caps)) ->
      let b = Buffer.create 64 in
      Codec.encode_request b ~tag ~target ~imms ~caps;
      let s = Buffer.contents b in
      let (tag', target', imms', caps'), off = Codec.decode_request s 0 in
      tag = tag'
      && State.addr_equal target target'
      && List.for_all2 Bytes.equal imms imms'
      && List.for_all2
           (fun (a, m) (a', m') -> State.addr_equal a a' && m = m')
           caps caps'
      && off = String.length s
      && String.length s
         = Codec.request_size ~tag ~imms ~ncaps:(List.length caps))

let prop_delivery_roundtrip =
  QCheck.Test.make ~name:"delivery roundtrip" ~count:200
    (QCheck.make
       QCheck.Gen.(
         map3
           (fun tag imms caps -> { State.d_tag = tag; d_imms = imms; d_caps = caps })
           tag_gen imms_gen
           (list_size (int_bound 6) (int_bound 0xffff))))
    (fun d ->
      let s = encode_to_string Codec.encode_delivery d in
      let d', off = Codec.decode_delivery s 0 in
      d.State.d_tag = d'.State.d_tag
      && List.for_all2 Bytes.equal d.State.d_imms d'.State.d_imms
      && d.State.d_caps = d'.State.d_caps
      && off = String.length s)

(* concatenated messages decode in sequence *)
let test_streamed_decoding () =
  let b = Buffer.create 64 in
  let a1 = { State.a_ctrl = 1; a_epoch = 2; a_oid = 3 } in
  let a2 = { State.a_ctrl = 9; a_epoch = 8; a_oid = 7 } in
  Codec.encode_addr b a1;
  Codec.encode_imms b [ Args.of_int 42 ];
  Codec.encode_addr b a2;
  let s = Buffer.contents b in
  let a1', off = Codec.decode_addr s 0 in
  let imms, off = Codec.decode_imms s off in
  let a2', off = Codec.decode_addr s off in
  check_bool "a1" true (State.addr_equal a1 a1');
  check_int "imm" 42 (Args.to_int (List.hd imms));
  check_bool "a2" true (State.addr_equal a2 a2');
  check_int "consumed all" (String.length s) off

let test_truncation_detected () =
  let b = Buffer.create 16 in
  Codec.encode_imms b [ Bytes.of_string "hello" ];
  let s = Buffer.contents b in
  let truncated = String.sub s 0 (String.length s - 2) in
  match Codec.decode_imms truncated 0 with
  | _ -> Alcotest.fail "truncated input decoded"
  | exception Failure _ -> ()

(* Wire sizes are the codec's sizes plus fixed headers. *)
let test_wire_uses_codec () =
  let imms = [ Args.of_int 1; Args.of_string "xyz" ] in
  check_int "invoke size"
    (Wire.peer_fixed + Codec.imms_size imms + Codec.caps_size 3)
    (Wire.invoke ~imms ~caps:3);
  check_int "syscall size"
    (Wire.syscall_fixed + Codec.imms_size [] + Codec.caps_size 0)
    (Wire.syscall ())

let qtest t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "fractos_codec"
    [
      ( "roundtrip",
        [
          qtest prop_addr_roundtrip;
          qtest prop_perms_roundtrip;
          qtest prop_imms_roundtrip;
          qtest prop_caps_roundtrip;
          qtest prop_request_roundtrip;
          qtest prop_delivery_roundtrip;
        ] );
      ( "framing",
        [
          Alcotest.test_case "streamed decoding" `Quick test_streamed_decoding;
          Alcotest.test_case "truncation detected" `Quick
            test_truncation_detected;
          Alcotest.test_case "wire sizes from codec" `Quick test_wire_uses_codec;
        ] );
    ]
