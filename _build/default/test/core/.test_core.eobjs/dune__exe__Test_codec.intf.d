test/core/test_codec.mli:
