test/core/test_security.ml: Alcotest Api Array Engine Error Format Fractos_core Fractos_sim Fractos_testbed List Printf QCheck QCheck_alcotest Sim State String Time
