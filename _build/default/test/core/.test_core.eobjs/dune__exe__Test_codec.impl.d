test/core/test_codec.ml: Alcotest Args Buffer Bytes Codec Fractos_core List Perms QCheck QCheck_alcotest State String Wire
