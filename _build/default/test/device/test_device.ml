(* Tests for the GPU and NVMe device models. *)

open Fractos_sim
module Net = Fractos_net
module Core = Fractos_core
module Gpu = Fractos_device.Gpu
module Nvme = Fractos_device.Nvme

let cfg = Net.Config.default
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_node f =
  Engine.run (fun () ->
      let fab = Net.Fabric.create () in
      let node = Net.Fabric.add_node fab ~name:"dev" Net.Node.Wimpy_cpu in
      f node)

(* ------------------------------------------------------------------ *)
(* GPU                                                                *)
(* ------------------------------------------------------------------ *)

let add_one_kernel =
  {
    Gpu.k_name = "add-one";
    k_cost = (fun ~items -> Time.us items);
    k_run =
      (fun ~bufs ~imms ->
        ignore imms;
        match bufs with
        | [ buf ] ->
          let data = buf.Core.Membuf.data in
          for i = 0 to Bytes.length data - 1 do
            Bytes.set data i (Char.chr ((Char.code (Bytes.get data i) + 1) land 0xff))
          done
        | _ -> failwith "add-one expects one buffer");
  }

let test_gpu_alloc_free () =
  with_node (fun node ->
      let gpu = Gpu.create ~node ~config:cfg ~mem_bytes:1024 in
      let b1 = Result.get_ok (Gpu.alloc gpu 512) in
      check_int "free after alloc" 512 (Gpu.mem_free_bytes gpu);
      (match Gpu.alloc gpu 1024 with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "overcommitted GPU memory");
      Gpu.free gpu b1;
      check_int "free after free" 1024 (Gpu.mem_free_bytes gpu))

let test_gpu_kernel_runs () =
  with_node (fun node ->
      let gpu = Gpu.create ~node ~config:cfg ~mem_bytes:1024 in
      Gpu.load_kernel gpu add_one_kernel;
      let buf = Result.get_ok (Gpu.alloc gpu 4) in
      Core.Membuf.write buf ~off:0 (Bytes.of_string "abc\000");
      (match Gpu.launch gpu ~name:"add-one" ~items:4 ~bufs:[ buf ] ~imms:[] with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      Alcotest.(check string)
        "kernel transformed data" "bcd\001"
        (Bytes.to_string (Core.Membuf.read buf ~off:0 ~len:4)))

let test_gpu_unknown_kernel () =
  with_node (fun node ->
      let gpu = Gpu.create ~node ~config:cfg ~mem_bytes:16 in
      match Gpu.launch gpu ~name:"nope" ~items:1 ~bufs:[] ~imms:[] with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "launched unknown kernel")

let test_gpu_launch_cost () =
  with_node (fun node ->
      let gpu = Gpu.create ~node ~config:cfg ~mem_bytes:16 in
      Gpu.load_kernel gpu add_one_kernel;
      let buf = Result.get_ok (Gpu.alloc gpu 1) in
      let t0 = Engine.now () in
      ignore (Gpu.launch gpu ~name:"add-one" ~items:100 ~bufs:[ buf ] ~imms:[]);
      let elapsed = Engine.now () - t0 in
      check_int "launch + 100 items"
        (cfg.Net.Config.gpu_launch + Time.us 100)
        elapsed)

let test_gpu_serial_execution_engine () =
  (* Two concurrent launches serialize: the GPU is the bottleneck. *)
  with_node (fun node ->
      let gpu = Gpu.create ~node ~config:cfg ~mem_bytes:16 in
      Gpu.load_kernel gpu add_one_kernel;
      let buf = Result.get_ok (Gpu.alloc gpu 1) in
      let t0 = Engine.now () in
      let finishes = ref [] in
      for _ = 1 to 2 do
        Engine.spawn (fun () ->
            ignore
              (Gpu.launch gpu ~name:"add-one" ~items:100 ~bufs:[ buf ] ~imms:[]);
            finishes := (Engine.now () - t0) :: !finishes)
      done;
      Engine.sleep (Time.ms 10);
      let per = cfg.Net.Config.gpu_launch + Time.us 100 in
      Alcotest.(check (list int))
        "serialized" [ per; 2 * per ]
        (List.rev !finishes))

(* ------------------------------------------------------------------ *)
(* NVMe                                                               *)
(* ------------------------------------------------------------------ *)

let test_nvme_volume_rw_roundtrip () =
  with_node (fun node ->
      let ssd = Nvme.create ~node ~config:cfg ~capacity:(1 lsl 20) in
      let vol = Result.get_ok (Nvme.create_volume ssd ~size:65536) in
      let data = Bytes.init 1000 (fun i -> Char.chr (i land 0xff)) in
      (match Nvme.write ssd vol ~off:123 data with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      let back = Result.get_ok (Nvme.read ssd vol ~off:123 ~len:1000) in
      check_bool "roundtrip" true (Bytes.equal data back))

let test_nvme_volumes_isolated () =
  with_node (fun node ->
      let ssd = Nvme.create ~node ~config:cfg ~capacity:(1 lsl 20) in
      let v1 = Result.get_ok (Nvme.create_volume ssd ~size:8192) in
      let v2 = Result.get_ok (Nvme.create_volume ssd ~size:8192) in
      ignore (Nvme.write ssd v1 ~off:0 (Bytes.make 100 'A'));
      ignore (Nvme.write ssd v2 ~off:0 (Bytes.make 100 'B'));
      let r1 = Result.get_ok (Nvme.read ssd v1 ~off:0 ~len:100) in
      let r2 = Result.get_ok (Nvme.read ssd v2 ~off:0 ~len:100) in
      check_bool "v1 intact" true (Bytes.equal r1 (Bytes.make 100 'A'));
      check_bool "v2 intact" true (Bytes.equal r2 (Bytes.make 100 'B')))

let test_nvme_bounds () =
  with_node (fun node ->
      let ssd = Nvme.create ~node ~config:cfg ~capacity:(1 lsl 20) in
      let vol = Result.get_ok (Nvme.create_volume ssd ~size:4096) in
      (match Nvme.read ssd vol ~off:4000 ~len:200 with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "read past volume end");
      match Nvme.write ssd vol ~off:(-1) (Bytes.make 1 'x') with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "negative offset accepted")

let test_nvme_capacity () =
  with_node (fun node ->
      let ssd = Nvme.create ~node ~config:cfg ~capacity:8192 in
      let _ = Result.get_ok (Nvme.create_volume ssd ~size:8000) in
      match Nvme.create_volume ssd ~size:8000 with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "overcommitted device")

let test_nvme_read_latency_floor () =
  with_node (fun node ->
      let ssd = Nvme.create ~node ~config:cfg ~capacity:(1 lsl 20) in
      let vol = Result.get_ok (Nvme.create_volume ssd ~size:65536) in
      let t0 = Engine.now () in
      ignore (Nvme.read ssd vol ~off:0 ~len:4096);
      let elapsed = Engine.now () - t0 in
      (* 70 us floor + transfer *)
      check_bool "~70us 4KiB read" true
        (elapsed >= Time.us 70 && elapsed < Time.us 75))

let test_nvme_write_cache_fast () =
  with_node (fun node ->
      let ssd = Nvme.create ~node ~config:cfg ~capacity:(1 lsl 20) in
      let vol = Result.get_ok (Nvme.create_volume ssd ~size:65536) in
      let t0 = Engine.now () in
      ignore (Nvme.write ssd vol ~off:0 (Bytes.make 4096 'x'));
      let elapsed = Engine.now () - t0 in
      check_bool "cached write below read floor" true
        (elapsed < cfg.Net.Config.nvme_read_latency))

let test_nvme_queue_depth_parallelism () =
  with_node (fun node ->
      let ssd = Nvme.create ~node ~config:cfg ~capacity:(1 lsl 24) in
      let vol = Result.get_ok (Nvme.create_volume ssd ~size:(1 lsl 23)) in
      let qd = cfg.Net.Config.nvme_queue_depth in
      let n = 2 * qd in
      let done_at = ref [] in
      for _ = 1 to n do
        Engine.spawn (fun () ->
            ignore (Nvme.read ssd vol ~off:0 ~len:4096);
            done_at := Engine.now () :: !done_at)
      done;
      Engine.sleep (Time.ms 100);
      let sorted = List.sort compare !done_at in
      let first_wave = List.filteri (fun i _ -> i < qd) sorted in
      let second_wave = List.filteri (fun i _ -> i >= qd) sorted in
      let max_first = List.fold_left max 0 first_wave in
      let min_second = List.fold_left min max_int second_wave in
      check_bool "waves separated by device latency" true
        (min_second >= max_first + cfg.Net.Config.nvme_read_latency / 2))

(* Property: NVMe roundtrips preserve arbitrary data at arbitrary offsets
   (crossing internal block boundaries). *)
let prop_nvme_roundtrip =
  QCheck.Test.make ~name:"nvme rw roundtrip across blocks" ~count:30
    QCheck.(pair (int_range 0 10_000) (int_range 1 10_000))
    (fun (off, len) ->
      with_node (fun node ->
          let ssd = Nvme.create ~node ~config:cfg ~capacity:(1 lsl 20) in
          let vol = Result.get_ok (Nvme.create_volume ssd ~size:65536) in
          if off + len > 65536 then true
          else begin
            let g = Prng.create ~seed:(off + len) in
            let data = Bytes.create len in
            Prng.fill_bytes g data;
            ignore (Nvme.write ssd vol ~off data);
            let back = Result.get_ok (Nvme.read ssd vol ~off ~len) in
            Bytes.equal data back
          end))

let qtest t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "fractos_device"
    [
      ( "gpu",
        [
          Alcotest.test_case "alloc/free" `Quick test_gpu_alloc_free;
          Alcotest.test_case "kernel runs" `Quick test_gpu_kernel_runs;
          Alcotest.test_case "unknown kernel" `Quick test_gpu_unknown_kernel;
          Alcotest.test_case "launch cost" `Quick test_gpu_launch_cost;
          Alcotest.test_case "serial engine" `Quick
            test_gpu_serial_execution_engine;
        ] );
      ( "nvme",
        [
          Alcotest.test_case "rw roundtrip" `Quick test_nvme_volume_rw_roundtrip;
          Alcotest.test_case "volumes isolated" `Quick test_nvme_volumes_isolated;
          Alcotest.test_case "bounds" `Quick test_nvme_bounds;
          Alcotest.test_case "capacity" `Quick test_nvme_capacity;
          Alcotest.test_case "read latency floor" `Quick
            test_nvme_read_latency_floor;
          Alcotest.test_case "write cache fast" `Quick
            test_nvme_write_cache_fast;
          Alcotest.test_case "queue depth" `Quick
            test_nvme_queue_depth_parallelism;
          qtest prop_nvme_roundtrip;
        ] );
    ]
