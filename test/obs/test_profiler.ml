(* Tests for the what-if profiler stack and artifact tooling: the JSON
   reader, per-resource timeline interval math and resource mapping,
   Whatif ranking determinism, the bench regression gate, the artifact
   differ, the dashboard's guaranteed final frame, and the generational
   Metrics.reset / OpenMetrics exposition interaction. *)

module Sim = Fractos_sim
module Obs = Fractos_obs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_parse () =
  let src =
    {|{"a": [1, 2.5, true, null, "xA\n"], "b": {"c": -3e2}, "d": ""}|}
  in
  match Obs.Json.parse src with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok j ->
    (match Option.bind (Obs.Json.member "a" j) Obs.Json.to_list with
    | Some [ one; half; t; n; s ] ->
      check_bool "1" true (Obs.Json.to_float one = Some 1.0);
      check_bool "2.5" true (Obs.Json.to_float half = Some 2.5);
      check_bool "true" true (Obs.Json.to_bool t = Some true);
      check_bool "null" true (n = Obs.Json.Null);
      check_bool "escapes" true (Obs.Json.to_string s = Some "xA\n")
    | _ -> Alcotest.fail "array shape");
    check_bool "path" true (Obs.Json.number_at [ "b"; "c" ] j = Some (-300.0));
    check_bool "missing path" true (Obs.Json.number_at [ "b"; "z" ] j = None);
    check_bool "empty string" true (Obs.Json.string_at [ "d" ] j = Some "")

let test_json_rejects () =
  check_bool "trailing garbage" true
    (Result.is_error (Obs.Json.parse "{} x"));
  check_bool "bare word" true (Result.is_error (Obs.Json.parse "nope"));
  check_bool "unterminated" true (Result.is_error (Obs.Json.parse "{\"a\": "));
  check_bool "missing file" true
    (Result.is_error (Obs.Json.of_file "/nonexistent/x.json"))

(* ------------------------------------------------------------------ *)
(* Timeline                                                            *)
(* ------------------------------------------------------------------ *)

let row ?(queued = 0) ?cat ~name ~node ~s ~e () =
  {
    Obs.Timeline.r_name = name;
    r_node = node;
    r_start = s;
    r_end = e;
    r_queued = queued;
    r_cat = cat;
  }

let test_timeline_resources () =
  let r = row ~name:"ctrl.invoke" ~node:"snic" ~s:0 ~e:10 () in
  check_str "ctrl" "ctrl@snic" (Obs.Timeline.resource_of r);
  check_str "copy" "copy@snic"
    (Obs.Timeline.resource_of { r with r_name = "ctrl.copy.chunk" });
  check_str "fabric" "fabric@snic"
    (Obs.Timeline.resource_of { r with r_name = "fabric.xfer" });
  check_str "gpu" "gpu@snic"
    (Obs.Timeline.resource_of { r with r_name = "gpu.exec" });
  check_str "client fallback" "client@snic"
    (Obs.Timeline.resource_of { r with r_name = "request" });
  check_str "cat override" "device@snic"
    (Obs.Timeline.resource_of { r with r_name = "svc.work"; r_cat = Some "device" });
  check_str "unattributed node" "ctrl@-"
    (Obs.Timeline.resource_of { r with r_node = "" })

let test_timeline_intervals () =
  let rows =
    [
      (* two overlapping ctrl spans: union [0,150), depth 2 *)
      row ~name:"ctrl.invoke" ~node:"snic" ~s:0 ~e:100 ();
      row ~name:"ctrl.invoke" ~node:"snic" ~s:50 ~e:150 ();
      (* fabric span with a leading queued share *)
      row ~name:"fabric.xfer" ~node:"ab" ~s:0 ~e:100 ~queued:40 ();
    ]
  in
  let t = Obs.Timeline.build ~buckets:10 rows in
  check_int "elapsed" 150 (Obs.Timeline.elapsed t);
  check_int "two resources" 2 (List.length t.Obs.Timeline.tl_resources);
  let find name =
    List.find
      (fun r -> r.Obs.Timeline.rs_name = name)
      t.Obs.Timeline.tl_resources
  in
  let ctrl = find "ctrl@snic" in
  check_int "ctrl busy union" 150 ctrl.Obs.Timeline.rs_busy;
  check_int "ctrl max depth" 2 ctrl.Obs.Timeline.rs_max_depth;
  check_int "ctrl spans" 2 ctrl.Obs.Timeline.rs_spans;
  let fab = find "fabric@ab" in
  check_int "fabric busy excludes queued head" 60 fab.Obs.Timeline.rs_busy;
  check_int "fabric queued" 40 fab.Obs.Timeline.rs_queued;
  check_int "heatmap width = buckets" 10
    (String.length (Obs.Timeline.heatmap ctrl));
  let csv = Obs.Timeline.to_csv t in
  check_bool "csv header" true (contains ~sub:Obs.Timeline.csv_header csv);
  check_bool "csv has ctrl row" true (contains ~sub:"ctrl@snic,2,150," csv)

let test_timeline_row_of_span () =
  let sp id name finished kind s e attrs =
    {
      Obs.Span.sp_id = id;
      sp_parent = 0;
      sp_name = name;
      sp_node = "n";
      sp_kind = kind;
      sp_start = s;
      sp_end = e;
      sp_finished = finished;
      sp_attrs = attrs;
    }
  in
  check_bool "unfinished dropped" true
    (Obs.Timeline.row_of_span (sp 1 "x" false Obs.Span.Complete 0 5 []) = None);
  check_bool "instant dropped" true
    (Obs.Timeline.row_of_span (sp 2 "x" true Obs.Span.Instant 3 3 []) = None);
  match
    Obs.Timeline.row_of_span
      (sp 3 "x" true Obs.Span.Complete 0 10 [ ("q", "50") ])
  with
  | None -> Alcotest.fail "finished span dropped"
  | Some r ->
    (* a queued attr larger than the span clips to the span length *)
    check_int "queued clipped" 10 r.Obs.Timeline.r_queued

(* ------------------------------------------------------------------ *)
(* Whatif                                                              *)
(* ------------------------------------------------------------------ *)

let test_whatif_ranking () =
  let measure ~component ~factor =
    ignore factor;
    match component with
    | None -> { Obs.Whatif.m_goodput = 100.0; m_p99_us = 10.0 }
    | Some "hot" -> { Obs.Whatif.m_goodput = 150.0; m_p99_us = 5.0 }
    | Some _ -> { Obs.Whatif.m_goodput = 100.0; m_p99_us = 10.0 }
  in
  let t =
    Obs.Whatif.profile ~components:[ "cold"; "hot" ] ~factors:[ 0.5 ] ~measure
  in
  check_bool "hot ranked first" true (Obs.Whatif.top t = Some "hot");
  (match t.Obs.Whatif.w_ranked with
  | [ a; b ] ->
    check_str "winner" "hot" a.Obs.Whatif.a_component;
    check_bool "gain 50%" true (abs_float (a.Obs.Whatif.a_gain -. 50.0) < 1e-9);
    check_bool "p99 drop 50%" true
      (abs_float (a.Obs.Whatif.a_p99_drop -. 50.0) < 1e-9);
    check_bool "loser gain 0" true (abs_float b.Obs.Whatif.a_gain < 1e-9)
  | _ -> Alcotest.fail "two attributions expected");
  let csv = Obs.Whatif.to_csv t in
  check_bool "csv header" true (contains ~sub:Obs.Whatif.csv_header csv);
  check_bool "csv winner row" true (contains ~sub:"1,hot,0.50,150.000" csv)

let test_whatif_tiebreak () =
  (* identical measurements: ranking must fall back to name order so the
     output is bit-deterministic *)
  let measure ~component:_ ~factor:_ =
    { Obs.Whatif.m_goodput = 100.0; m_p99_us = 10.0 }
  in
  let t =
    Obs.Whatif.profile ~components:[ "zeta"; "alpha" ] ~factors:[ 0.5 ] ~measure
  in
  match t.Obs.Whatif.w_ranked with
  | [ a; z ] ->
    check_str "alphabetical on tie" "alpha" a.Obs.Whatif.a_component;
    check_str "zeta second" "zeta" z.Obs.Whatif.a_component
  | _ -> Alcotest.fail "two attributions expected"

(* ------------------------------------------------------------------ *)
(* Gate                                                                *)
(* ------------------------------------------------------------------ *)

let loadcurve_json knee =
  Printf.sprintf
    {|{"experiment": "loadcurve", "variants": [
        {"name": "fastpath-on", "points": [
          {"offered_rps": 1, "goodput_rps": %f},
          {"offered_rps": 2, "goodput_rps": %f}]}]}|}
    (knee /. 2.0) knee

let parse s =
  match Obs.Json.parse s with
  | Ok j -> j
  | Error e -> Alcotest.failf "bad test JSON: %s" e

let test_gate_extract () =
  match Obs.Gate.extract (parse (loadcurve_json 200.0)) with
  | Error e -> Alcotest.fail e
  | Ok metrics ->
    check_bool "knee is the max goodput" true
      (metrics = [ ("knee_goodput_rps/fastpath-on", 200.0) ])

let test_gate_check () =
  let base = parse (loadcurve_json 200.0) in
  let ok r = match r with Ok g -> g | Error e -> Alcotest.fail e in
  (* identical run passes *)
  let g = ok (Obs.Gate.check ~baseline:base ~fresh:base ()) in
  check_bool "same run passes" true g.Obs.Gate.r_pass;
  (* a 25% regression fails at 10% tolerance, passes at 30% *)
  let degraded = parse (loadcurve_json 150.0) in
  let g = ok (Obs.Gate.check ~baseline:base ~fresh:degraded ()) in
  check_bool "25% drop fails" false g.Obs.Gate.r_pass;
  let g =
    ok (Obs.Gate.check ~tolerance:0.30 ~baseline:base ~fresh:degraded ())
  in
  check_bool "25% drop passes at 30% tolerance" true g.Obs.Gate.r_pass;
  (* an improvement passes and is flagged for baseline refresh *)
  let improved = parse (loadcurve_json 300.0) in
  let g = ok (Obs.Gate.check ~baseline:base ~fresh:improved ()) in
  check_bool "improvement passes" true g.Obs.Gate.r_pass;
  check_int "improvement flagged" 1 (List.length g.Obs.Gate.r_improved);
  (* wrong experiment kind is an error, not a pass *)
  check_bool "unknown experiment rejected" true
    (Result.is_error
       (Obs.Gate.check ~baseline:base
          ~fresh:(parse {|{"experiment": "nope"}|})
          ()))

let test_gate_emit_roundtrip () =
  let fresh = parse (loadcurve_json 200.0) in
  let metrics = Result.get_ok (Obs.Gate.extract fresh) in
  let digest =
    Obs.Gate.emit_string ~scale:1.3 ~source:"test" ~tolerance:0.10 metrics
  in
  let j = parse digest in
  check_bool "embedded tolerance" true
    (Obs.Gate.baseline_tolerance j = Some 0.10);
  (match Obs.Gate.metrics_of_baseline j with
  | Ok [ (name, v) ] ->
    check_str "metric name" "knee_goodput_rps/fastpath-on" name;
    check_bool "scaled by 1.3" true (abs_float (v -. 260.0) < 0.01)
  | _ -> Alcotest.fail "baseline digest did not round-trip");
  (* the inflated baseline must fail against the original run: this is
     the negative self-test the CI gate script relies on *)
  match Obs.Gate.check ~baseline:j ~fresh () with
  | Ok g -> check_bool "inflated baseline fails" false g.Obs.Gate.r_pass
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Diff                                                                *)
(* ------------------------------------------------------------------ *)

let art dir ~series ~breakdown =
  {
    Obs.Artifacts.a_dir = dir;
    a_meta = [ ("seed", dir) ];
    a_series = series;
    a_hists = [];
    a_breakdown = breakdown;
    a_requests = 1;
    a_journal = [];
    a_spans = [];
  }

let test_diff_significance () =
  let a =
    art "A"
      ~series:[ ("m", 100.0); ("steady", 50.0); ("gone", 1.0) ]
      ~breakdown:[ ("total", 100.0); ("ctrl", 50.0); ("device", 50.0) ]
  in
  let b =
    art "B"
      ~series:[ ("m", 150.0); ("steady", 52.0); ("new", 2.0) ]
      ~breakdown:[ ("total", 100.0); ("ctrl", 80.0); ("device", 20.0) ]
  in
  let d = Obs.Diff.diff ~threshold:0.10 a b in
  check_bool "significant" true (Obs.Diff.significant d);
  check_bool "meta difference surfaced" true
    (d.Obs.Diff.df_meta = [ ("seed", "A", "B") ]);
  check_bool "added" true (d.Obs.Diff.df_added = [ "new" ]);
  check_bool "removed" true (d.Obs.Diff.df_removed = [ "gone" ]);
  let keys =
    List.map (fun c -> (c.Obs.Diff.d_kind, c.Obs.Diff.d_key)) d.Obs.Diff.df_changes
  in
  check_bool "metric +50% kept" true (List.mem ("metric", "m") keys);
  check_bool "steady 4% filtered" false (List.mem ("metric", "steady") keys);
  check_bool "breakdown share shift kept" true
    (List.mem ("breakdown", "ctrl") keys);
  (* largest relative change ranks first *)
  (match d.Obs.Diff.df_changes with
  | first :: _ -> check_str "m first" "m" first.Obs.Diff.d_key
  | [] -> Alcotest.fail "no changes");
  let same = Obs.Diff.diff ~threshold:0.10 a a in
  check_bool "self-diff is quiet" false (Obs.Diff.significant same)

let mk_hist node name ~count ~v =
  {
    Obs.Artifacts.h_node = node;
    h_name = name;
    h_count = count;
    h_mean = v;
    h_p50 = v;
    h_p95 = v;
    h_p99 = v;
    h_max = v;
  }

let test_diff_appeared_vanished () =
  (* a zero-count histogram side carries NaN statistics and a zero
     baseline series has no relative delta: both used to emit NaN/inf
     rel deltas that polluted the --fail-on-change ranking; they must
     now surface as explicit appeared/vanished verdicts *)
  let nan = Float.nan in
  let a =
    {
      (art "A" ~series:[ ("errs", 0.0); ("drops", 3.0); ("m", 100.0) ]
         ~breakdown:[])
      with
      Obs.Artifacts.a_hists =
        [ mk_hist "n0" "lat" ~count:0.0 ~v:nan; mk_hist "n1" "lat" ~count:5.0 ~v:40.0 ];
    }
  in
  let b =
    {
      (art "B" ~series:[ ("errs", 7.0); ("drops", 0.0); ("m", 100.0) ]
         ~breakdown:[])
      with
      Obs.Artifacts.a_hists =
        [ mk_hist "n0" "lat" ~count:9.0 ~v:55.0; mk_hist "n1" "lat" ~count:0.0 ~v:nan ];
    }
  in
  let d = Obs.Diff.diff ~threshold:0.10 a b in
  (* no NaN/inf may reach the ranked numeric changes *)
  List.iter
    (fun c ->
      check_bool "change rel finite" true (Float.is_finite c.Obs.Diff.d_rel))
    d.Obs.Diff.df_changes;
  check_bool "zero->nonzero series appeared" true
    (List.mem ("metric", "errs", "appeared") d.Obs.Diff.df_verdicts);
  check_bool "nonzero->zero series vanished" true
    (List.mem ("metric", "drops", "vanished") d.Obs.Diff.df_verdicts);
  check_bool "zero-count hist side appeared" true
    (List.mem ("hist", "n0/lat", "appeared") d.Obs.Diff.df_verdicts);
  check_bool "counted hist going quiet vanished" true
    (List.mem ("hist", "n1/lat", "vanished") d.Obs.Diff.df_verdicts);
  check_bool "unchanged series not flagged" false
    (List.exists
       (fun c -> c.Obs.Diff.d_key = "m")
       d.Obs.Diff.df_changes);
  check_bool "verdicts count as significant" true (Obs.Diff.significant d);
  (* zero-count on both sides is not drift *)
  let a0 =
    { (art "A" ~series:[] ~breakdown:[]) with
      Obs.Artifacts.a_hists = [ mk_hist "n0" "lat" ~count:0.0 ~v:nan ] }
  in
  let b0 =
    { (art "A" ~series:[] ~breakdown:[]) with
      Obs.Artifacts.a_hists = [ mk_hist "n0" "lat" ~count:0.0 ~v:nan ] }
  in
  let q = Obs.Diff.diff ~threshold:0.10 a0 b0 in
  check_bool "both-zero hists quiet" false (Obs.Diff.significant q)

(* ------------------------------------------------------------------ *)
(* Dashboard final frame                                               *)
(* ------------------------------------------------------------------ *)

let test_dashboard_final_frame () =
  Obs.Metrics.reset ();
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Sim.Engine.run (fun () ->
      let d = Obs.Dashboard.start ~interval:(Sim.Time.ms 1) ~out:fmt () in
      (* quiesce well before the first tick: the run is shorter than one
         interval, so only the guaranteed final frame can appear *)
      Sim.Engine.sleep (Sim.Time.us 10);
      Obs.Dashboard.stop d;
      check_int "exactly one frame" 1 (Obs.Dashboard.ticks d);
      Obs.Dashboard.stop d;
      check_int "stop is idempotent" 1 (Obs.Dashboard.ticks d));
  Format.pp_print_flush fmt ();
  let out = Buffer.contents buf in
  check_bool "frame rendered" true (contains ~sub:"[top] t=" out);
  check_bool "final frame marked" true (contains ~sub:" fin" out)

(* ------------------------------------------------------------------ *)
(* Generational Metrics.reset x OpenMetrics exposition                 *)
(* ------------------------------------------------------------------ *)

let test_exposition_across_resets () =
  Obs.Metrics.reset ();
  let c = Obs.Metrics.counter ~node:"n" "reqs" in
  Obs.Metrics.incr ~by:5 c;
  let h = Obs.Metrics.histogram ~node:"n" "lat" in
  Obs.Metrics.observe h 1000;
  let before = Obs.Openmetrics.to_string () in
  check_bool "counter exposed" true
    (contains ~sub:"fractos_reqs_total{node=\"n\"} 5" before);
  check_bool "histogram exposed" true
    (contains ~sub:"fractos_lat_count{node=\"n\"} 1" before);
  (* generational reset: stale instruments vanish from the exposition
     entirely — no zero-valued ghosts *)
  Obs.Metrics.reset ();
  let after = Obs.Openmetrics.to_string () in
  check_bool "stale counter gone" false (contains ~sub:"fractos_reqs" after);
  check_bool "stale histogram gone" false (contains ~sub:"fractos_lat" after);
  check_bool "still well-formed" true (contains ~sub:"# EOF" after);
  (* a pre-reset handle lazily re-zeroes on first use: the new value, not
     the pre-reset accumulation, is what gets exposed *)
  Obs.Metrics.incr ~by:2 c;
  Obs.Metrics.observe h 500;
  let revived = Obs.Openmetrics.to_string () in
  check_bool "revived counter re-zeroed" true
    (contains ~sub:"fractos_reqs_total{node=\"n\"} 2" revived);
  check_bool "revived histogram re-zeroed" true
    (contains ~sub:"fractos_lat_count{node=\"n\"} 1" revived);
  check_bool "revived histogram sum restarts" true
    (contains ~sub:"fractos_lat_sum{node=\"n\"} 500" revived);
  (* the CSV summary tracks the same generation *)
  let csv = Obs.Openmetrics.histograms_csv_string () in
  check_bool "csv row re-zeroed" true (contains ~sub:"n,lat,1,500" csv)

let () =
  Alcotest.run "obs-profiler"
    [
      ( "json",
        [
          Alcotest.test_case "parse" `Quick test_json_parse;
          Alcotest.test_case "rejects" `Quick test_json_rejects;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "resource mapping" `Quick test_timeline_resources;
          Alcotest.test_case "interval math" `Quick test_timeline_intervals;
          Alcotest.test_case "row of span" `Quick test_timeline_row_of_span;
        ] );
      ( "whatif",
        [
          Alcotest.test_case "ranking" `Quick test_whatif_ranking;
          Alcotest.test_case "deterministic tie-break" `Quick
            test_whatif_tiebreak;
        ] );
      ( "gate",
        [
          Alcotest.test_case "extract" `Quick test_gate_extract;
          Alcotest.test_case "check" `Quick test_gate_check;
          Alcotest.test_case "emit roundtrip + negative" `Quick
            test_gate_emit_roundtrip;
        ] );
      ( "diff",
        [
          Alcotest.test_case "significance" `Quick test_diff_significance;
          Alcotest.test_case "appeared/vanished" `Quick
            test_diff_appeared_vanished;
        ] );
      ( "dashboard",
        [
          Alcotest.test_case "guaranteed final frame" `Quick
            test_dashboard_final_frame;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "exposition across resets" `Quick
            test_exposition_across_resets;
        ] );
    ]
