(* Tests for the observability runtime added on top of metrics/spans:
   the journal flight recorder (ring overflow and severity accounting),
   OpenMetrics label-value escaping, the tail-based sampler (retention
   invariants, head-sampling bound, determinism — both in isolation and
   across two identical chaos runs), and SLO burn-rate window math at
   the exact window boundary. *)

module Sim = Fractos_sim
module Obs = Fractos_obs
module Fault = Fractos_fault

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Journal                                                            *)
(* ------------------------------------------------------------------ *)

let with_journal ?(capacity = 16_384) f =
  Obs.Journal.reset ();
  Obs.Journal.set_capacity capacity;
  Obs.Journal.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Journal.set_enabled false;
      Obs.Journal.set_min_severity Obs.Journal.Debug;
      Obs.Journal.set_capacity 16_384;
      Obs.Journal.reset ())
    f

let test_journal_ring_overflow () =
  with_journal ~capacity:4 @@ fun () ->
  Sim.Engine.run (fun () ->
      (* 7 events: odd indices Debug, even Warn; first 3 kind "a" *)
      for i = 1 to 7 do
        let sev =
          if i mod 2 = 0 then Obs.Journal.Warn else Obs.Journal.Debug
        in
        Obs.Journal.record ~node:"n" ~sev
          ~kind:(if i <= 3 then "a" else "b")
          ~detail:(string_of_int i) ()
      done;
      check_int "retained" 4 (Obs.Journal.count ());
      check_int "recorded" 7 (Obs.Journal.recorded ());
      check_int "overflowed" 3 (Obs.Journal.overflowed ());
      (* dropped events 1,2,3 = Debug, Warn, Debug *)
      check_int "overflowed debug" 2
        (Obs.Journal.overflowed_by_severity Obs.Journal.Debug);
      check_int "overflowed warn" 1
        (Obs.Journal.overflowed_by_severity Obs.Journal.Warn);
      (match Obs.Journal.events () with
      | oldest :: _ ->
        check_str "oldest survivor is event 4" "4" oldest.Obs.Journal.j_detail
      | [] -> Alcotest.fail "journal empty");
      (* per-kind summary counts everything recorded, not just retained *)
      check_int "summary a" 3 (List.assoc "a" (Obs.Journal.summary ()));
      check_int "summary b" 4 (List.assoc "b" (Obs.Journal.summary ())))

let test_journal_severity_filter () =
  with_journal @@ fun () ->
  Sim.Engine.run (fun () ->
      Obs.Journal.set_min_severity Obs.Journal.Warn;
      let evaluated = ref false in
      Obs.Journal.record_lazy ~node:"n" ~sev:Obs.Journal.Debug ~kind:"quiet"
        ~detail:(fun () ->
          evaluated := true;
          "never")
        ();
      check_bool "suppressed detail not built" false !evaluated;
      check_int "suppressed" 1 (Obs.Journal.suppressed ());
      check_int "not retained" 0 (Obs.Journal.count ());
      Obs.Journal.record_lazy ~node:"n" ~sev:Obs.Journal.Error ~kind:"loud"
        ~detail:(fun () ->
          evaluated := true;
          "kept")
        ();
      check_bool "stored detail built" true !evaluated;
      check_int "retained" 1 (Obs.Journal.count ()));
  (* disabled: record sites are inert and build nothing *)
  Obs.Journal.set_enabled false;
  Obs.Journal.reset ();
  let evaluated = ref false in
  Sim.Engine.run (fun () ->
      Obs.Journal.record_lazy ~node:"n" ~sev:Obs.Journal.Error ~kind:"off"
        ~detail:(fun () ->
          evaluated := true;
          "no")
        ());
  check_bool "disabled detail not built" false !evaluated;
  check_int "disabled records nothing" 0 (Obs.Journal.recorded ())

(* ------------------------------------------------------------------ *)
(* OpenMetrics escaping                                               *)
(* ------------------------------------------------------------------ *)

let test_escape_label () =
  check_str "backslash" {|a\\b|} (Obs.Openmetrics.escape_label {|a\b|});
  check_str "quote" {|a\"b|} (Obs.Openmetrics.escape_label {|a"b|});
  check_str "newline" {|a\nb|} (Obs.Openmetrics.escape_label "a\nb");
  check_str "clean passthrough" "node-0:gpu"
    (Obs.Openmetrics.escape_label "node-0:gpu");
  (* end to end: a hostile node name must neither break a line nor leak
     an unescaped quote into the label *)
  Obs.Metrics.reset ();
  let c = Obs.Metrics.counter ~node:"evil\\x\"y\nz" "hits" in
  Obs.Metrics.incr c;
  let out = Obs.Openmetrics.to_string () in
  let expected = {|node="evil\\x\"y\nz"|} in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check_bool "escaped label present" true (contains out expected);
  String.split_on_char '\n' out
  |> List.iter (fun line ->
         (* every non-comment line with a label set parses as
            name{...} value: exactly one '{' and the '}' after it *)
         if String.length line > 0 && line.[0] <> '#' && contains line "{"
         then
           check_bool
             ("balanced label braces: " ^ line)
             true
             (String.index line '{' < String.rindex line '}'))

(* ------------------------------------------------------------------ *)
(* Sampler                                                            *)
(* ------------------------------------------------------------------ *)

let with_sampler ~threshold ~keep f =
  Obs.Sampler.reset ();
  Obs.Sampler.configure ~threshold ~keep ();
  Obs.Sampler.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Sampler.set_enabled false;
      Obs.Sampler.reset ())
    f

(* The synthetic request stream used by both the invariant and the
   determinism test: 1 error, 1 shed, 1 slow, 10 healthy. *)
let feed () =
  let us = Sim.Time.us in
  let obs ~trace ~latency outcome =
    ignore
      (Obs.Sampler.observe ~trace ~latency ~outcome ~hist:"req" ())
  in
  obs ~trace:1 ~latency:(us 1) (Obs.Sampler.Err "boom");
  obs ~trace:2 ~latency:(us 1) Obs.Sampler.Shed;
  obs ~trace:3 ~latency:(us 100) Obs.Sampler.Ok_;
  for i = 0 to 9 do
    obs ~trace:(10 + i) ~latency:(us 1) Obs.Sampler.Ok_
  done

let test_sampler_retention () =
  with_sampler ~threshold:(Sim.Time.us 10) ~keep:0.25 @@ fun () ->
  feed ();
  check_int "seen" 13 (Obs.Sampler.seen ());
  check_int "healthy" 10 (Obs.Sampler.healthy_seen ());
  (* every error/shed/slow trace retained, unconditionally *)
  check_bool "error kept" true (Obs.Sampler.is_retained 1);
  check_bool "shed kept" true (Obs.Sampler.is_retained 2);
  check_bool "slow kept" true (Obs.Sampler.is_retained 3);
  check_int "kept by error" 1 (Obs.Sampler.kept_by Obs.Sampler.Kept_error);
  check_int "kept by shed" 1 (Obs.Sampler.kept_by Obs.Sampler.Kept_shed);
  check_int "kept by slow" 1 (Obs.Sampler.kept_by Obs.Sampler.Kept_slow);
  (* the credit accumulator keeps healthy requests 4 and 8 (0.25 * 4 =
     1.0), never exceeding ceil(keep * healthy) *)
  let head = Obs.Sampler.kept_by Obs.Sampler.Kept_head in
  check_int "head kept deterministically" 2 head;
  check_bool "head bound" true
    (float_of_int head <= Float.ceil (0.25 *. 10.));
  check_bool "healthy 4 kept" true (Obs.Sampler.is_retained 13);
  check_bool "healthy 8 kept" true (Obs.Sampler.is_retained 17);
  check_bool "healthy 1 dropped" false (Obs.Sampler.is_retained 10);
  (* exemplars: first retained trace per (hist, bucket) wins *)
  let b_fast = Obs.Metrics.bucket_of (Sim.Time.us 1) in
  let b_slow = Obs.Metrics.bucket_of (Sim.Time.us 100) in
  check_int "fast bucket exemplar = first retained (the error)" 1
    (Option.get (Obs.Sampler.exemplar ~hist:"req" ~bucket:b_fast));
  check_int "slow bucket exemplar" 3
    (Option.get (Obs.Sampler.exemplar ~hist:"req" ~bucket:b_slow))

let test_sampler_deterministic () =
  let run () =
    with_sampler ~threshold:(Sim.Time.us 10) ~keep:0.3 @@ fun () ->
    feed ();
    (Obs.Sampler.retained (), Obs.Sampler.exemplars ())
  in
  let a = run () and b = run () in
  check_bool "same stream, same retained set and exemplars" true (a = b)

(* Two identical same-seed chaos runs must agree on everything the
   sampler decided: the full rendered report (which includes the
   sampling summary line) and the retained trace set left in the
   sampler after the run. *)
let test_chaos_sampling_deterministic () =
  let spec = Fault.Spec.default in
  let go () =
    let r =
      Fault.Chaos.run ~clients:3 ~requests:12 ~workload:Fault.Chaos.Mixed
        ~sampling:(Sim.Time.us 500, 0.2) ~spec ~seed:1234 ()
    in
    (Fault.Chaos.to_lines r, Obs.Sampler.retained ())
  in
  let lines_a, kept_a = go () in
  let lines_b, kept_b = go () in
  check_bool "reports identical" true (lines_a = lines_b);
  check_bool "retained trace sets identical" true (kept_a = kept_b);
  check_bool "something was sampled" true (kept_a <> [])

(* ------------------------------------------------------------------ *)
(* SLO burn-rate windows                                              *)
(* ------------------------------------------------------------------ *)

let test_slo_burn_math () =
  Sim.Engine.run (fun () ->
      let t =
        Obs.Slo.create
          (Obs.Slo.make ~latency:(Sim.Time.us 10) ~latency_goal:0.9
             ~error_goal:1.0
             ~windows:[ Sim.Time.us 100 ]
             "burn")
      in
      (* 10 samples, 2 over the latency threshold: bad fraction 0.2
         against a 0.1 budget = burn 2.0 *)
      for i = 1 to 10 do
        let latency = Sim.Time.us (if i <= 2 then 50 else 1) in
        Obs.Slo.observe t ~latency ~ok:true
      done;
      (match Obs.Slo.report t with
      | [ r ] ->
        check_int "samples" 10 r.Obs.Slo.w_samples;
        Alcotest.(check (float 1e-9)) "latency burn" 2.0 r.Obs.Slo.w_latency_burn;
        Alcotest.(check (float 1e-9)) "error burn" 0.0 r.Obs.Slo.w_error_burn
      | rs -> Alcotest.failf "expected 1 window, got %d" (List.length rs));
      (* zero error budget (goal = 1.0) and a failure: infinite burn *)
      Obs.Slo.observe t ~latency:(Sim.Time.us 1) ~ok:false;
      match Obs.Slo.report t with
      | [ r ] ->
        check_bool "zero-budget violation burns infinitely" true
          (r.Obs.Slo.w_error_burn = infinity)
      | _ -> Alcotest.fail "expected 1 window")

let test_slo_window_boundary () =
  Sim.Engine.run (fun () ->
      let w = Sim.Time.us 100 in
      let t =
        Obs.Slo.create
          (Obs.Slo.make ~latency:(Sim.Time.us 10) ~latency_goal:0.9
             ~error_goal:0.99 ~windows:[ w ] "edge")
      in
      Sim.Engine.sleep (Sim.Time.us 7);
      Obs.Slo.observe t ~latency:(Sim.Time.us 50) ~ok:true;
      let samples_in_window () =
        match Obs.Slo.report t with
        | [ r ] -> r.Obs.Slo.w_samples
        | _ -> Alcotest.fail "expected 1 window"
      in
      check_int "visible at its own instant" 1 (samples_in_window ());
      Sim.Engine.sleep (w - 1);
      check_int "still inside at now - w + 1" 1 (samples_in_window ());
      (* the window is half-open: a sample aged exactly w is outside *)
      Sim.Engine.sleep 1;
      check_int "excluded at exactly now - w" 0 (samples_in_window ());
      (* eviction: the next observation drops samples older than the
         longest window from the deque entirely *)
      Obs.Slo.observe t ~latency:(Sim.Time.us 1) ~ok:true;
      check_int "old sample evicted" 1 (Obs.Slo.samples t);
      check_int "total is cumulative" 2 (Obs.Slo.total t))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "fractos_obs_runtime"
    [
      ( "journal",
        [
          Alcotest.test_case "ring overflow accounting" `Quick
            test_journal_ring_overflow;
          Alcotest.test_case "severity filter and lazy detail" `Quick
            test_journal_severity_filter;
        ] );
      ( "openmetrics",
        [ Alcotest.test_case "label escaping" `Quick test_escape_label ] );
      ( "sampler",
        [
          Alcotest.test_case "retention invariants" `Quick
            test_sampler_retention;
          Alcotest.test_case "deterministic replay" `Quick
            test_sampler_deterministic;
          Alcotest.test_case "chaos same-seed determinism" `Quick
            test_chaos_sampling_deterministic;
        ] );
      ( "slo",
        [
          Alcotest.test_case "burn-rate math" `Quick test_slo_burn_math;
          Alcotest.test_case "half-open window boundary" `Quick
            test_slo_window_boundary;
        ] );
    ]
