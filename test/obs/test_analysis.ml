(* Tests for the trace-analytics layer on top of spans/metrics: golden
   critical-path breakdowns on a synthetic span tree, the breakdown of a
   real delegated-invoke + third-party-copy scenario, capability
   audit-log ordering across a subtree revocation and a stale-epoch
   rejection, OpenMetrics text-exposition round-trips, and the
   Metrics.reset handle semantics. *)

module Sim = Fractos_sim
module Obs = Fractos_obs
module Core = Fractos_core
module Tb = Fractos_testbed.Testbed

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let ok_exn = Core.Error.ok_exn

let with_spans f =
  Obs.Span.reset ();
  Obs.Span.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Span.set_enabled false) f

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Critical-path breakdown                                            *)
(* ------------------------------------------------------------------ *)

let test_category_names_roundtrip () =
  List.iter
    (fun c ->
      match Obs.Analysis.category_of_string (Obs.Analysis.category_name c) with
      | Some c' -> check_bool "roundtrip" true (c = c')
      | None -> Alcotest.failf "no parse for %s" (Obs.Analysis.category_name c))
    Obs.Analysis.categories

(* A hand-built request tree with known critical-path attribution:

     request  [0,100]                     (root; own time -> client)
       ctrl.handle [10,30]                -> ctrl 20
       (gap [30,35] between children)     -> idle 5
       gpu.exec [35,60]                   -> device 25
       fabric.xfer [60,90] with q=12      -> queue 12 + fabric 18

   plus the uncovered lead [0,10] and trail [90,100] -> client 20. *)
let test_breakdown_golden () =
  with_spans @@ fun () ->
  Sim.Engine.run (fun () ->
      Obs.Span.with_ ~node:"app" ~name:"request" (fun () ->
          Sim.Engine.sleep 10;
          Obs.Span.with_ ~node:"a" ~name:"ctrl.handle" (fun () ->
              Sim.Engine.sleep 20);
          Sim.Engine.sleep 5;
          Obs.Span.with_ ~node:"gpu" ~name:"gpu.exec" (fun () ->
              Sim.Engine.sleep 25);
          let f =
            Obs.Span.start ~node:"a" ~name:"fabric.xfer"
              ~attrs:[ ("q", "12") ] ()
          in
          Sim.Engine.sleep 30;
          Obs.Span.finish f;
          Sim.Engine.sleep 10));
  match Obs.Analysis.analyze ~root_name:"request" () with
  | [ b ] ->
    let open Obs.Analysis in
    check_int "total" 100 b.b_total;
    check_int "ctrl" 20 (get b Ctrl);
    check_int "fabric" 18 (get b Fabric);
    check_int "queue" 12 (get b Queue);
    check_int "device" 25 (get b Device);
    check_int "client" 20 (get b Client);
    check_int "idle" 5 (get b Idle);
    check_int "categories sum to total" b.b_total
      (List.fold_left (fun a (_, n) -> a + n) 0 b.b_ns);
    check_int "csv row has one field per header column"
      (List.length (String.split_on_char ',' csv_header))
      (List.length (String.split_on_char ',' (csv_row b)))
  | l -> Alcotest.failf "expected 1 breakdown, got %d" (List.length l)

(* An explicit ("cat", _) attribute overrides the name-prefix mapping. *)
let test_breakdown_cat_override () =
  with_spans @@ fun () ->
  Sim.Engine.run (fun () ->
      Obs.Span.with_ ~node:"app" ~name:"request" (fun () ->
          Obs.Span.with_ ~node:"ssd" ~name:"blk.op"
            ~attrs:[ ("cat", "device") ] (fun () -> Sim.Engine.sleep 40)));
  match Obs.Analysis.analyze ~root_name:"request" () with
  | [ b ] -> check_int "override -> device" 40 (Obs.Analysis.get b Obs.Analysis.Device)
  | l -> Alcotest.failf "expected 1 breakdown, got %d" (List.length l)

(* A real 2-node scenario: pa invokes a delegated service request owned
   by pb's controller, then runs a third-party cross-node memory_copy —
   the tax categories must account for nearly all of the latency. *)
let run_invoke_scenario () =
  Tb.run (fun tb ->
      let setups = Tb.nodes_with_ctrls tb Tb.Ctrl_cpu [ "a"; "b" ] in
      let sa = List.nth setups 0 and sb = List.nth setups 1 in
      let pa = Tb.add_proc tb ~on:sa.Tb.node ~ctrl:sa.Tb.ctrl "pa" in
      let pb = Tb.add_proc tb ~on:sb.Tb.node ~ctrl:sb.Tb.ctrl "pb" in
      let svc = ok_exn (Core.Api.request_create pb ~tag:"svc" ()) in
      let svc_a = Tb.grant ~src:pb ~dst:pa svc in
      Sim.Engine.spawn (fun () ->
          let rec loop () =
            let d = Core.Api.receive pb in
            (match List.rev d.Core.State.d_caps with
            | k :: _ -> ignore (Core.Api.request_invoke pb k)
            | [] -> ());
            loop ()
          in
          loop ());
      let src =
        ok_exn
          (Core.Api.memory_create pa
             (Core.Process.alloc pa 65536)
             Core.Perms.ro)
      in
      let dst =
        Tb.grant ~src:pb ~dst:pa
          (ok_exn
             (Core.Api.memory_create pb
                (Core.Process.alloc pb 65536)
                Core.Perms.rw))
      in
      Obs.Span.with_ ~node:"a" ~name:"request" (fun () ->
          let cont = ok_exn (Core.Api.request_create pa ~tag:"k" ()) in
          let call =
            ok_exn (Core.Api.request_derive pa svc_a ~caps:[ cont ] ())
          in
          ok_exn (Core.Api.request_invoke pa call);
          ignore (Core.Api.receive pa);
          ok_exn (Core.Api.memory_copy pa ~src ~dst)))

let test_breakdown_real_scenario () =
  with_spans @@ fun () ->
  run_invoke_scenario ();
  match Obs.Analysis.analyze ~root_name:"request" () with
  | [ b ] ->
    let open Obs.Analysis in
    check_int "categories sum to total" b.b_total
      (List.fold_left (fun a (_, n) -> a + n) 0 b.b_ns);
    check_bool "spent time in controllers" true (get b Ctrl > 0);
    check_bool "spent time on the fabric" true (get b Fabric > 0);
    let covered = get b Ctrl + get b Fabric + get b Queue + get b Device in
    if 10 * covered < 9 * b.b_total then
      Alcotest.failf "tax categories cover only %d of %d ns" covered b.b_total
  | l -> Alcotest.failf "expected 1 breakdown, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Capability audit log                                               *)
(* ------------------------------------------------------------------ *)

let with_audit f =
  Obs.Audit.reset ();
  Obs.Audit.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Audit.set_enabled false) f

let seq_of_kind lin k =
  match List.find_opt (fun e -> e.Obs.Audit.au_kind = k) lin with
  | Some e -> e.Obs.Audit.au_seq
  | None -> Alcotest.failf "no %s event in lineage" (Obs.Audit.kind_name k)

let test_audit_subtree_revocation () =
  Tb.run (fun tb ->
      let setups = Tb.nodes_with_ctrls tb Tb.Ctrl_cpu [ "a"; "b" ] in
      let sa = List.nth setups 0 and sb = List.nth setups 1 in
      let pa = Tb.add_proc tb ~on:sa.Tb.node ~ctrl:sa.Tb.ctrl "pa" in
      let pb = Tb.add_proc tb ~on:sb.Tb.node ~ctrl:sb.Tb.ctrl "pb" in
      with_audit @@ fun () ->
      let base = ok_exn (Core.Api.request_create pb ~tag:"t" ()) in
      let rt = ok_exn (Core.Api.cap_create_revtree pb base) in
      let rt2 = ok_exn (Core.Api.cap_create_revtree pb rt) in
      (* capture global addresses while the caps are still mapped *)
      let rt_addr =
        Option.get (Core.Controller.addr_of_cid sb.Tb.ctrl pb rt)
      in
      let rt2_addr =
        Option.get (Core.Controller.addr_of_cid sb.Tb.ctrl pb rt2)
      in
      let rt2_a = Tb.grant ~src:pb ~dst:pa rt2 in
      Sim.Engine.spawn (fun () -> ignore (Core.Api.receive pb));
      ok_exn (Core.Api.request_invoke pa rt2_a);
      Sim.Engine.sleep (Sim.Time.ms 1);
      ok_exn (Core.Api.cap_revoke pb rt);
      Sim.Engine.sleep (Sim.Time.ms 1);
      (* the delegated leaf's lineage reads mint -> delegate -> invoke ->
         revoke, in record order *)
      let lin =
        Obs.Audit.lineage ~ctrl:rt2_addr.Core.State.a_ctrl
          ~oid:rt2_addr.Core.State.a_oid
      in
      let s k = seq_of_kind lin k in
      check_bool "mint before delegate" true
        (s Obs.Audit.Mint < s Obs.Audit.Delegate);
      check_bool "delegate before invoke" true
        (s Obs.Audit.Delegate < s Obs.Audit.Invoke);
      check_bool "invoke before revoke" true
        (s Obs.Audit.Invoke < s Obs.Audit.Revoke);
      (* subtree walk order: the revoked root precedes its descendant *)
      let revokes =
        List.filter
          (fun e -> e.Obs.Audit.au_kind = Obs.Audit.Revoke)
          (Obs.Audit.events ())
      in
      let rev_seq oid =
        match List.find_opt (fun e -> e.Obs.Audit.au_oid = oid) revokes with
        | Some e -> e.Obs.Audit.au_seq
        | None -> Alcotest.failf "object %d was not revoked" oid
      in
      check_bool "subtree root revoked before its child" true
        (rev_seq rt_addr.Core.State.a_oid < rev_seq rt2_addr.Core.State.a_oid);
      (* summary counts are cumulative and cover what we did *)
      let n k = List.assoc k (Obs.Audit.summary ()) in
      check_bool "mints recorded" true (n Obs.Audit.Mint >= 3);
      check_bool "two objects revoked" true (n Obs.Audit.Revoke >= 2);
      check_bool "drops recorded for unmapped caps" true (n Obs.Audit.Drop >= 1))

let test_audit_stale_reject () =
  Tb.run (fun tb ->
      let setups = Tb.nodes_with_ctrls tb Tb.Ctrl_cpu [ "a"; "b" ] in
      let sa = List.nth setups 0 and sb = List.nth setups 1 in
      let pa = Tb.add_proc tb ~on:sa.Tb.node ~ctrl:sa.Tb.ctrl "pa" in
      let pb = Tb.add_proc tb ~on:sb.Tb.node ~ctrl:sb.Tb.ctrl "pb" in
      with_audit @@ fun () ->
      let req = ok_exn (Core.Api.request_create pb ~tag:"t" ()) in
      let addr = Option.get (Core.Controller.addr_of_cid sb.Tb.ctrl pb req) in
      let req_a = Tb.grant ~src:pb ~dst:pa req in
      Core.Controller.fail sb.Tb.ctrl;
      Core.Controller.restart sb.Tb.ctrl;
      (match Core.Api.request_invoke pa req_a with
      | Error Core.Error.Stale -> ()
      | Ok () -> Alcotest.fail "stale capability accepted"
      | Error e -> Alcotest.failf "unexpected: %s" (Core.Error.to_string e));
      check_bool "stale-epoch rejection recorded" true
        (List.exists
           (fun e ->
             e.Obs.Audit.au_kind = Obs.Audit.Stale_reject
             && e.Obs.Audit.au_oid = addr.Core.State.a_oid
             && e.Obs.Audit.au_epoch = addr.Core.State.a_epoch)
           (Obs.Audit.events ())))

let test_audit_ring_eviction () =
  Tb.run (fun _ ->
      with_audit @@ fun () ->
      Obs.Audit.set_capacity 8;
      Fun.protect ~finally:(fun () -> Obs.Audit.set_capacity 65536)
      @@ fun () ->
      for i = 1 to 20 do
        Obs.Audit.record ~node:"n" ~kind:Obs.Audit.Mint ~ctrl:1 ~epoch:0
          ~oid:i ()
      done;
      check_int "ring holds capacity" 8 (Obs.Audit.count ());
      check_int "evicted the rest" 12 (Obs.Audit.evicted ());
      (match Obs.Audit.events () with
      | e :: _ -> check_int "oldest retained is #13" 13 e.Obs.Audit.au_oid
      | [] -> Alcotest.fail "empty ring");
      check_int "summary is cumulative across evictions" 20
        (List.assoc Obs.Audit.Mint (Obs.Audit.summary ())))

(* ------------------------------------------------------------------ *)
(* Exporters                                                          *)
(* ------------------------------------------------------------------ *)

let test_openmetrics_roundtrip () =
  Obs.Metrics.reset ();
  let c = Obs.Metrics.counter ~node:"a" "reqs done" in
  Obs.Metrics.incr ~by:7 c;
  let g = Obs.Metrics.gauge ~node:"a" "depth" in
  Obs.Metrics.set g 9;
  Obs.Metrics.set g 4;
  let h = Obs.Metrics.histogram ~node:"b" "lat" in
  List.iter (Obs.Metrics.observe h) [ 1000; 1000; 1000; 5000 ];
  let s = Obs.Openmetrics.to_string () in
  let lines = String.split_on_char '\n' s in
  let has l = List.mem l lines in
  check_bool "counter family typed" true
    (has "# TYPE fractos_reqs_done counter");
  check_bool "counter sample (sanitized name, _total)" true
    (has "fractos_reqs_done_total{node=\"a\"} 7");
  check_bool "gauge sample is the current value" true
    (has "fractos_depth{node=\"a\"} 4");
  check_bool "gauge peak family" true (has "fractos_depth_peak{node=\"a\"} 9");
  check_bool "histogram count" true (has "fractos_lat_count{node=\"b\"} 4");
  check_bool "histogram sum" true (has "fractos_lat_sum{node=\"b\"} 8000");
  check_bool "terminated by # EOF" true (has "# EOF");
  let buckets =
    List.filter_map
      (fun l ->
        if contains ~sub:"fractos_lat_bucket{" l then
          let i = String.rindex l ' ' in
          Some (int_of_string (String.sub l (i + 1) (String.length l - i - 1)))
        else None)
      lines
  in
  check_bool "has le buckets" true (buckets <> []);
  let rec mono = function
    | a :: (b :: _ as tl) -> a <= b && mono tl
    | _ -> true
  in
  check_bool "cumulative buckets are monotone" true (mono buckets);
  check_int "+Inf bucket equals the count" 4
    (List.nth buckets (List.length buckets - 1));
  (* histogram CSV summary covers the same registry *)
  let csv = Obs.Openmetrics.histograms_csv_string () in
  check_bool "csv header" true
    (contains ~sub:Obs.Openmetrics.histograms_csv_header csv);
  check_bool "csv row for the histogram" true (contains ~sub:"b,lat,4," csv)

let test_metrics_reset_reinterns_handles () =
  Obs.Metrics.reset ();
  let c = Obs.Metrics.counter ~node:"n" "c" in
  Obs.Metrics.incr ~by:3 c;
  let g = Obs.Metrics.gauge ~node:"n" "g" in
  Obs.Metrics.set g 8;
  let h = Obs.Metrics.histogram ~node:"n" "h" in
  Obs.Metrics.observe h 500;
  Obs.Metrics.reset ();
  check_int "counter re-zeroed" 0 (Obs.Metrics.counter_value c);
  check_int "gauge re-zeroed" 0 (Obs.Metrics.gauge_value g);
  check_int "gauge peak re-zeroed" 0 (Obs.Metrics.gauge_max g);
  check_int "histogram re-zeroed" 0 (Obs.Metrics.observations h);
  (* a handle obtained before the reset keeps recording into the live
     registry, not into a detached instrument *)
  Obs.Metrics.incr c;
  Obs.Metrics.observe h 100;
  check_bool "handle still interned" true
    (Obs.Metrics.counter ~node:"n" "c" == c);
  check_int "old counter handle recorded post-reset" 1
    (Obs.Metrics.counter_value (Obs.Metrics.counter ~node:"n" "c"));
  check_int "old histogram handle recorded post-reset" 1
    (Obs.Metrics.observations (Obs.Metrics.histogram ~node:"n" "h"))

let test_truncated_trace_metadata () =
  Obs.Span.reset ();
  let old_limit = Obs.Span.get_limit () in
  Obs.Span.set_limit 4;
  Obs.Span.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Span.set_enabled false;
      Obs.Span.set_limit old_limit;
      Obs.Span.reset ())
  @@ fun () ->
  Sim.Engine.run (fun () ->
      for _ = 1 to 10 do
        Obs.Span.with_ ~name:"s" (fun () -> Sim.Engine.sleep 1)
      done);
  check_bool "spans were dropped" true (Obs.Span.dropped () > 0);
  let path = Filename.temp_file "fractos_trace" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Obs.Export.write_chrome_trace path;
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  check_bool "dropped count surfaced in otherData" true
    (contains
       ~sub:(Printf.sprintf "\"dropped\":\"%d\"" (Obs.Span.dropped ()))
       s)

let () =
  Alcotest.run "obs-analysis"
    [
      ( "breakdown",
        [
          Alcotest.test_case "category names roundtrip" `Quick
            test_category_names_roundtrip;
          Alcotest.test_case "golden synthetic tree" `Quick
            test_breakdown_golden;
          Alcotest.test_case "cat attribute override" `Quick
            test_breakdown_cat_override;
          Alcotest.test_case "delegated invoke + copy" `Quick
            test_breakdown_real_scenario;
        ] );
      ( "audit",
        [
          Alcotest.test_case "subtree revocation lineage" `Quick
            test_audit_subtree_revocation;
          Alcotest.test_case "stale-epoch rejection" `Quick
            test_audit_stale_reject;
          Alcotest.test_case "ring eviction" `Quick test_audit_ring_eviction;
        ] );
      ( "export",
        [
          Alcotest.test_case "openmetrics roundtrip" `Quick
            test_openmetrics_roundtrip;
          Alcotest.test_case "metrics reset reinterns handles" `Quick
            test_metrics_reset_reinterns_handles;
          Alcotest.test_case "truncated trace metadata" `Quick
            test_truncated_trace_metadata;
        ] );
    ]
