(* Tests for the observability library: metrics registry (histogram
   percentiles on known distributions), span collection and parenting
   across a real 2-node request_invoke chain, and a golden test that the
   Chrome-trace export parses and has balanced B/E events. *)

module Sim = Fractos_sim
module Obs = Fractos_obs
module Core = Fractos_core
module Tb = Fractos_testbed.Testbed

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let ok_exn = Core.Error.ok_exn

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)
(* ------------------------------------------------------------------ *)

(* Property: for any sample, every percentile estimate is within one
   bucket's relative resolution (a factor of 2^(1/4) at 4 buckets per
   octave) of the exact percentile computed from the sorted sample. The
   exact rank mirrors the implementation's convention
   (rank = max 1 (round (p * n)), 1-indexed). Edge cases covered by the
   generator: v = 0 and v = 1 both collapse to bucket 0, whose
   representative value is 1.0 (clamped by the observed max). *)
let prop_histogram_percentiles =
  let sample_gen =
    QCheck.Gen.(
      list_size (int_range 1 200)
        (frequency
           [
             (2, int_bound 3); (* exercises the 0/1 bucket-0 edge *)
             (3, int_bound 1000);
             (3, map (fun v -> 1 + v) (int_bound 1_000_000_000));
           ]))
  in
  let arb =
    QCheck.make
      ~print:(fun vs -> String.concat "," (List.map string_of_int vs))
      sample_gen
  in
  QCheck.Test.make ~name:"percentiles within one bucket of exact" ~count:200
    arb (fun values ->
      Obs.Metrics.reset ();
      let h = Obs.Metrics.histogram ~node:"prop" "lat" in
      List.iter (Obs.Metrics.observe h) values;
      let sorted = Array.of_list (List.sort compare values) in
      let n = Array.length sorted in
      let width = Float.exp2 0.25 (* one bucket, 4 per octave *) in
      let eps = 1e-9 in
      List.for_all
        (fun p ->
          let rank =
            int_of_float
              (Float.max 1. (Float.round (p *. float_of_int n)))
          in
          let exact = float_of_int sorted.(rank - 1) in
          let est = Obs.Metrics.percentile h p in
          (* bucket 0 represents both 0 and 1 as 1.0 (clamped by the
             observed max), hence the max 1.0 on the upper bound *)
          est >= (exact /. width) -. eps
          && est <= Float.max 1.0 (exact *. width) +. eps)
        [ 0.0; 0.25; 0.5; 0.75; 0.9; 0.95; 0.99; 1.0 ])

let test_counters_gauges () =
  Obs.Metrics.reset ();
  let c = Obs.Metrics.counter ~node:"n" "c" in
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:4 c;
  check_int "counter" 5 (Obs.Metrics.counter_value c);
  check_bool "interned" true (Obs.Metrics.counter ~node:"n" "c" == c);
  check_bool "per-node" true (Obs.Metrics.counter ~node:"m" "c" != c);
  let g = Obs.Metrics.gauge ~node:"n" "g" in
  Obs.Metrics.set g 7;
  Obs.Metrics.add g (-3);
  check_int "gauge" 4 (Obs.Metrics.gauge_value g);
  check_int "peak" 7 (Obs.Metrics.gauge_max g)

(* Uniform 1000..1000_000 in steps of 1000: percentiles are known, and
   log-bucketing guarantees ~19 % relative resolution. *)
let test_histogram_percentiles () =
  Obs.Metrics.reset ();
  let h = Obs.Metrics.histogram ~node:"n" "lat" in
  for i = 1 to 1000 do
    Obs.Metrics.observe h (i * 1000)
  done;
  check_int "n" 1000 (Obs.Metrics.observations h);
  check_int "max" 1_000_000 (Obs.Metrics.hist_max h);
  let within p exp =
    let v = Obs.Metrics.percentile h p in
    let rel = Float.abs (v -. exp) /. exp in
    if rel > 0.2 then
      Alcotest.failf "p%.0f = %.0f, expected ~%.0f (%.0f%% off)" (100. *. p) v
        exp (100. *. rel)
  in
  within 0.50 500_000.;
  within 0.95 950_000.;
  within 0.99 990_000.;
  Alcotest.(check (float 1.)) "mean is exact" 500_500. (Obs.Metrics.mean h);
  check_bool "p100 capped at observed max" true
    (Obs.Metrics.percentile h 1.0 <= 1_000_000.)

let test_histogram_point_mass () =
  Obs.Metrics.reset ();
  let h = Obs.Metrics.histogram ~node:"n" "point" in
  for _ = 1 to 100 do
    Obs.Metrics.observe h 4096
  done;
  List.iter
    (fun p ->
      let v = Obs.Metrics.percentile h p in
      check_bool "within one bucket of the point" true
        (v <= 4096. && v >= 4096. /. 1.2))
    [ 0.5; 0.95; 0.99 ]

let test_histogram_empty_and_small () =
  Obs.Metrics.reset ();
  let h = Obs.Metrics.histogram ~node:"n" "e" in
  check_bool "empty percentile is nan" true
    (Float.is_nan (Obs.Metrics.percentile h 0.5));
  check_bool "empty mean is nan" true (Float.is_nan (Obs.Metrics.mean h));
  Obs.Metrics.observe h 1;
  Alcotest.(check (float 0.)) "single 1" 1.0 (Obs.Metrics.p50 h)

(* ------------------------------------------------------------------ *)
(* Spans                                                              *)
(* ------------------------------------------------------------------ *)

let with_spans f =
  Obs.Span.reset ();
  Obs.Span.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Span.set_enabled false) f

let test_span_nesting_basic () =
  with_spans @@ fun () ->
  Sim.Engine.run (fun () ->
      Obs.Span.with_ ~node:"x" ~name:"outer" (fun () ->
          let outer = Obs.Span.current () in
          Sim.Engine.sleep 100;
          Obs.Span.with_ ~node:"x" ~name:"inner" (fun () ->
              Sim.Engine.sleep 50;
              check_int "ambient ctx is the inner span's parent link" outer
                (Option.get (Obs.Span.find (Obs.Span.current ())))
                  .Obs.Span.sp_parent);
          Obs.Span.instant ~name:"mark" ()));
  match Obs.Span.all () with
  | [ outer; inner; mark ] ->
    check_int "outer is a root" 0 outer.Obs.Span.sp_parent;
    check_int "inner under outer" outer.Obs.Span.sp_id inner.Obs.Span.sp_parent;
    check_int "mark under outer" outer.Obs.Span.sp_id mark.Obs.Span.sp_parent;
    check_bool "outer finished" true outer.Obs.Span.sp_finished;
    check_int "outer duration" 150
      (outer.Obs.Span.sp_end - outer.Obs.Span.sp_start);
    check_int "inner duration" 50
      (inner.Obs.Span.sp_end - inner.Obs.Span.sp_start)
  | l -> Alcotest.failf "expected 3 spans, got %d" (List.length l)

let test_span_disabled_is_free () =
  Obs.Span.reset ();
  Obs.Span.set_enabled false;
  Sim.Engine.run (fun () ->
      let id = Obs.Span.start ~name:"x" () in
      check_int "id 0 when disabled" 0 id;
      Obs.Span.with_ ~name:"y" (fun () -> ()));
  check_int "nothing collected" 0 (Obs.Span.count ())

(* A real 2-node scenario: pa on node a invokes a service Request owned
   by pb's controller on node b (delegated continuation RPC), then runs a
   cross-node memory_copy. *)
let run_invoke_scenario () =
  Tb.run (fun tb ->
      let setups = Tb.nodes_with_ctrls tb Tb.Ctrl_cpu [ "a"; "b" ] in
      let sa = List.nth setups 0 and sb = List.nth setups 1 in
      let pa = Tb.add_proc tb ~on:sa.Tb.node ~ctrl:sa.Tb.ctrl "pa" in
      let pb = Tb.add_proc tb ~on:sb.Tb.node ~ctrl:sb.Tb.ctrl "pb" in
      let svc = ok_exn (Core.Api.request_create pb ~tag:"svc" ()) in
      let svc_a = Tb.grant ~src:pb ~dst:pa svc in
      Sim.Engine.spawn (fun () ->
          let rec loop () =
            let d = Core.Api.receive pb in
            (match List.rev d.Core.State.d_caps with
            | k :: _ -> ignore (Core.Api.request_invoke pb k)
            | [] -> ());
            loop ()
          in
          loop ());
      let cont = ok_exn (Core.Api.request_create pa ~tag:"k" ()) in
      let call = ok_exn (Core.Api.request_derive pa svc_a ~caps:[ cont ] ()) in
      ok_exn (Core.Api.request_invoke pa call);
      ignore (Core.Api.receive pa);
      let src =
        ok_exn
          (Core.Api.memory_create pa (Core.Process.alloc pa 8192) Core.Perms.ro)
      in
      let dst =
        Tb.grant ~src:pb ~dst:pa
          (ok_exn
             (Core.Api.memory_create pb (Core.Process.alloc pb 8192)
                Core.Perms.rw))
      in
      ok_exn (Core.Api.memory_copy pa ~src ~dst))

let test_span_tree_across_invoke () =
  with_spans @@ fun () ->
  run_invoke_scenario ();
  let spans = Obs.Span.all () in
  let find name = List.filter (fun s -> s.Obs.Span.sp_name = name) spans in
  let deliver =
    match find "ctrl.deliver" with
    | d :: _ -> d
    | [] -> Alcotest.fail "no ctrl.deliver span"
  in
  Alcotest.(check string) "delivered on the owner node" "b"
    deliver.Obs.Span.sp_node;
  (* the parent chain from the delivery reaches back through the peer hop
     to the client's syscall span — one connected request tree *)
  let rec ancestors acc id =
    if id = 0 then acc
    else
      match Obs.Span.find id with
      | None -> acc
      | Some s -> ancestors (s.Obs.Span.sp_name :: acc) s.Obs.Span.sp_parent
  in
  let chain = ancestors [] deliver.Obs.Span.sp_parent in
  check_bool "rooted at the client's request_invoke" true
    (List.mem "sys.request_invoke" chain);
  check_bool "crossed the peer hop" true (List.mem "ctrl.peer.invoke" chain);
  (* copy spans: chunks parent under a ctrl.copy on the source side *)
  let copies = find "ctrl.copy" in
  let chunks = find "ctrl.copy.chunk" in
  check_bool "has copy span" true (copies <> []);
  check_bool "has chunk spans" true (chunks <> []);
  List.iter
    (fun c ->
      check_bool "chunk under a copy span" true
        (List.exists (fun p -> p.Obs.Span.sp_id = c.Obs.Span.sp_parent) copies))
    chunks

(* ------------------------------------------------------------------ *)
(* Chrome-trace golden test                                           *)
(* ------------------------------------------------------------------ *)

(* A small JSON parser — enough to validate the exporter's output
   without taking a yojson dependency. *)
type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_list of json list
  | J_obj of (string * json) list

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let next () =
    let c = peek () in
    incr pos;
    c
  in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
      incr pos;
      skip_ws ()
    | _ -> ()
  in
  let expect c = if next () <> c then fail (Printf.sprintf "expected %c" c) in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents b
      | '\\' ->
        (match next () with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          let h = String.sub s !pos 4 in
          pos := !pos + 4;
          Buffer.add_char b (Char.chr (int_of_string ("0x" ^ h) land 0xff))
        | c -> fail (Printf.sprintf "bad escape %c" c));
        go ()
      | '\000' -> fail "unterminated string"
      | c ->
        Buffer.add_char b c;
        go ()
    in
    go ()
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '"' -> J_str (parse_string ())
    | '{' ->
      expect '{';
      skip_ws ();
      if peek () = '}' then begin
        incr pos;
        J_obj []
      end
      else
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match next () with
          | ',' -> members ((k, v) :: acc)
          | '}' -> J_obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or }"
        in
        members []
    | '[' ->
      expect '[';
      skip_ws ();
      if peek () = ']' then begin
        incr pos;
        J_list []
      end
      else
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match next () with
          | ',' -> elems (v :: acc)
          | ']' -> J_list (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        elems []
    | 't' ->
      pos := !pos + 4;
      J_bool true
    | 'f' ->
      pos := !pos + 5;
      J_bool false
    | 'n' ->
      pos := !pos + 4;
      J_null
    | _ ->
      let start = !pos in
      let is_num c =
        (c >= '0' && c <= '9')
        || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while is_num (peek ()) do
        incr pos
      done;
      if !pos = start then fail "unexpected character";
      J_num (float_of_string (String.sub s start (!pos - start)))
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let field k = function J_obj kvs -> List.assoc_opt k kvs | _ -> None

let as_str = function
  | Some (J_str s) -> s
  | _ -> Alcotest.fail "expected a string field"

let as_num = function
  | Some (J_num f) -> f
  | _ -> Alcotest.fail "expected a numeric field"

let test_chrome_trace_golden () =
  with_spans (fun () -> run_invoke_scenario ());
  let raw = Obs.Export.chrome_trace_string () in
  let j = parse_json raw in
  let evs =
    match field "traceEvents" j with
    | Some (J_list l) -> l
    | _ -> Alcotest.fail "no traceEvents array"
  in
  check_bool "nonempty" true (List.length evs > 0);
  check_bool "has metadata events" true
    (List.exists (fun ev -> as_str (field "ph" ev) = "M") evs);
  (* per-tid B/E events balance like a bracket language, LIFO by name *)
  let stacks : (int, string list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack tid =
    match Hashtbl.find_opt stacks tid with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add stacks tid r;
      r
  in
  let names = ref [] in
  let n_b = ref 0 and n_e = ref 0 in
  List.iter
    (fun ev ->
      let ph = as_str (field "ph" ev) in
      match ph with
      | "B" ->
        incr n_b;
        let tid = int_of_float (as_num (field "tid" ev)) in
        let name = as_str (field "name" ev) in
        names := name :: !names;
        let st = stack tid in
        st := name :: !st
      | "E" -> (
        incr n_e;
        let tid = int_of_float (as_num (field "tid" ev)) in
        let name = as_str (field "name" ev) in
        let st = stack tid in
        match !st with
        | top :: rest when top = name -> st := rest
        | _ -> Alcotest.failf "unbalanced E %S on tid %d" name tid)
      | _ -> ())
    evs;
  check_bool "at least one duration pair" true (!n_b > 0);
  check_int "as many E as B" !n_b !n_e;
  Hashtbl.iter
    (fun tid st ->
      if !st <> [] then
        Alcotest.failf "tid %d left open: %s" tid (String.concat "," !st))
    stacks;
  let has n = List.mem n !names in
  check_bool "invoke span exported" true (has "ctrl.invoke");
  check_bool "client syscall span exported" true (has "sys.request_invoke");
  check_bool "copy span exported" true (has "ctrl.copy")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "fractos_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick test_counters_gauges;
          Alcotest.test_case "percentiles on a uniform distribution" `Quick
            test_histogram_percentiles;
          Alcotest.test_case "point mass" `Quick test_histogram_point_mass;
          Alcotest.test_case "empty and small" `Quick
            test_histogram_empty_and_small;
          QCheck_alcotest.to_alcotest prop_histogram_percentiles;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and parenting" `Quick
            test_span_nesting_basic;
          Alcotest.test_case "disabled is free" `Quick
            test_span_disabled_is_free;
          Alcotest.test_case "tree across a 2-node invoke" `Quick
            test_span_tree_across_invoke;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace golden" `Quick
            test_chrome_trace_golden;
        ] );
    ]
