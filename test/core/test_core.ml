(* Tests for the FractOS core: capabilities, Memory and Request objects,
   decentralized invocation, revocation trees, monitors, failure
   translation, and the memory_copy engine. *)

open Fractos_sim
open Fractos_core
module Tb = Fractos_testbed.Testbed

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let err =
  Alcotest.testable
    (fun fmt e -> Error.pp fmt e)
    (fun a b -> Error.equal a b)

let result_t ok = Alcotest.result ok err
let ok_exn = Error.ok_exn

(* Two hosts, one controller each, one process each. *)
let two_node_setup tb =
  let a = Tb.add_host tb "alpha" in
  let b = Tb.add_host tb "beta" in
  let ca = Tb.add_ctrl tb ~on:a in
  let cb = Tb.add_ctrl tb ~on:b in
  let pa = Tb.add_proc tb ~on:a ~ctrl:ca "proc-a" in
  let pb = Tb.add_proc tb ~on:b ~ctrl:cb "proc-b" in
  (pa, pb, ca, cb)

(* ------------------------------------------------------------------ *)
(* Null syscall / plumbing                                            *)
(* ------------------------------------------------------------------ *)

let test_null_roundtrip () =
  Tb.run (fun tb ->
      let pa, _, _, _ = two_node_setup tb in
      Alcotest.check (result_t Alcotest.unit) "null ok" (Ok ()) (Api.null pa))

let test_null_latency_close_to_paper () =
  (* Table 3: FractOS null op with controller on the local CPU = 3.00 us. *)
  Tb.run (fun tb ->
      let a = Tb.add_host tb "alpha" in
      let ca = Tb.add_ctrl tb ~on:a in
      let pa = Tb.add_proc tb ~on:a ~ctrl:ca "p" in
      let t0 = Engine.now () in
      ignore (ok_exn (Api.null pa));
      let us = Time.to_us_f (Engine.now () - t0) in
      if us < 2.5 || us > 3.6 then
        Alcotest.failf "null latency %.2fus outside [2.5, 3.6]" us)

let test_null_latency_snic_higher () =
  Tb.run (fun tb ->
      let a = Tb.add_host tb "alpha" in
      let ca = Tb.add_snic_ctrl tb ~host:a in
      let pa = Tb.add_proc tb ~on:a ~ctrl:ca "p" in
      let t0 = Engine.now () in
      ignore (ok_exn (Api.null pa));
      let us = Time.to_us_f (Engine.now () - t0) in
      (* Table 3: 4.50 us on the sNIC *)
      if us < 4.0 || us > 5.2 then
        Alcotest.failf "snic null latency %.2fus outside [4.0, 5.2]" us)

let test_unattached_process () =
  Tb.run (fun tb ->
      ignore tb;
      let node = Tb.add_host tb "n" in
      let p = Process.create ~node "loose" in
      match Api.null p with
      | Error (Error.Bad_argument _) -> ()
      | Ok () -> Alcotest.fail "unattached syscall succeeded"
      | Error e -> Alcotest.failf "unexpected error %s" (Error.to_string e))

(* ------------------------------------------------------------------ *)
(* Memory objects                                                     *)
(* ------------------------------------------------------------------ *)

let test_memory_create_and_copy_local () =
  Tb.run (fun tb ->
      let a = Tb.add_host tb "alpha" in
      let ca = Tb.add_ctrl tb ~on:a in
      let pa = Tb.add_proc tb ~on:a ~ctrl:ca "p" in
      let src_buf = Process.alloc pa 64 in
      Membuf.write src_buf ~off:0 (Bytes.of_string "hello, fractos!!");
      let dst_buf = Process.alloc pa 64 in
      let src = ok_exn (Api.memory_create pa src_buf Perms.ro) in
      let dst = ok_exn (Api.memory_create pa dst_buf Perms.rw) in
      ok_exn (Api.memory_copy pa ~src ~dst);
      check_str "data copied" "hello, fractos!!"
        (Bytes.to_string (Membuf.read dst_buf ~off:0 ~len:16)))

let test_memory_copy_cross_node () =
  Tb.run (fun tb ->
      let pa, pb, _, _ = two_node_setup tb in
      let src_buf = Process.alloc pa 4096 in
      let g = Prng.create ~seed:1 in
      Prng.fill_bytes g src_buf.Membuf.data;
      let dst_buf = Process.alloc pb 4096 in
      let src = ok_exn (Api.memory_create pa src_buf Perms.ro) in
      let dst_b = ok_exn (Api.memory_create pb dst_buf Perms.rw) in
      (* delegate pb's dst capability to pa via operator bootstrap *)
      let dst = Tb.grant ~src:pb ~dst:pa dst_b in
      ok_exn (Api.memory_copy pa ~src ~dst);
      check_bool "bytes equal" true
        (Bytes.equal src_buf.Membuf.data dst_buf.Membuf.data))

let test_memory_copy_large_chunked () =
  Tb.run (fun tb ->
      let pa, pb, _, _ = two_node_setup tb in
      let n = 300_000 in
      let src_buf = Process.alloc pa n in
      let g = Prng.create ~seed:7 in
      Prng.fill_bytes g src_buf.Membuf.data;
      let dst_buf = Process.alloc pb n in
      let src = ok_exn (Api.memory_create pa src_buf Perms.ro) in
      let dst = Tb.grant ~src:pb ~dst:pa (ok_exn (Api.memory_create pb dst_buf Perms.rw)) in
      let t0 = Engine.now () in
      ok_exn (Api.memory_copy pa ~src ~dst);
      let elapsed = Engine.now () - t0 in
      check_bool "bytes equal" true
        (Bytes.equal src_buf.Membuf.data dst_buf.Membuf.data);
      (* 300 kB at 10 Gbps is 240 us of pure wire; with bounce buffers and
         pipelining we should land within ~2.5x of that. *)
      check_bool "pipelined time sane" true
        (elapsed > 240_000 && elapsed < 600_000))

let test_memory_copy_async_overlap () =
  (* Two in-flight copies from one process overlap on the wire: the
     asynchronous protocol of Table 1. *)
  Tb.run (fun tb ->
      let pa, pb, _, _ = two_node_setup tb in
      (* small copies: software costs dominate, so overlap shows clearly
         (large copies serialize on the shared wire regardless) *)
      let size = 4096 in
      let mk () =
        let src = ok_exn (Api.memory_create pa (Process.alloc pa size) Perms.ro) in
        let dst =
          Tb.grant ~src:pb ~dst:pa
            (ok_exn (Api.memory_create pb (Process.alloc pb size) Perms.rw))
        in
        (src, dst)
      in
      let (s1, d1) = mk () and (s2, d2) = mk () in
      ok_exn (Api.memory_copy pa ~src:s1 ~dst:d1);
      (* sequential *)
      let t0 = Engine.now () in
      ok_exn (Api.memory_copy pa ~src:s1 ~dst:d1);
      ok_exn (Api.memory_copy pa ~src:s2 ~dst:d2);
      let seq = Engine.now () - t0 in
      (* overlapped *)
      let t1 = Engine.now () in
      let iv1 = Api.memory_copy_async pa ~src:s1 ~dst:d1 in
      let iv2 = Api.memory_copy_async pa ~src:s2 ~dst:d2 in
      ok_exn (Ivar.await iv1);
      ok_exn (Ivar.await iv2);
      let par = Engine.now () - t1 in
      check_bool
        (Printf.sprintf "overlapped (%s) well under sequential (%s)"
           (Time.to_string par) (Time.to_string seq))
        true
        (par * 4 < seq * 3))

let test_memory_copy_perms () =
  Tb.run (fun tb ->
      let pa, _, _, _ = two_node_setup tb in
      let b1 = Process.alloc pa 16 and b2 = Process.alloc pa 16 in
      let wo = ok_exn (Api.memory_create pa b1 Perms.wo) in
      let ro = ok_exn (Api.memory_create pa b2 Perms.ro) in
      let rw = ok_exn (Api.memory_create pa b2 Perms.rw) in
      Alcotest.check (result_t Alcotest.unit) "unreadable source"
        (Error Error.Perm_denied)
        (Api.memory_copy pa ~src:wo ~dst:rw);
      let rdable = ok_exn (Api.memory_create pa b1 Perms.ro) in
      Alcotest.check (result_t Alcotest.unit) "unwritable destination"
        (Error Error.Perm_denied)
        (Api.memory_copy pa ~src:rdable ~dst:ro))

let test_memory_copy_bounds () =
  Tb.run (fun tb ->
      let pa, _, _, _ = two_node_setup tb in
      let big = Process.alloc pa 64 and small = Process.alloc pa 16 in
      let src = ok_exn (Api.memory_create pa big Perms.ro) in
      let dst = ok_exn (Api.memory_create pa small Perms.rw) in
      Alcotest.check (result_t Alcotest.unit) "dst too small"
        (Error Error.Bounds)
        (Api.memory_copy pa ~src ~dst))

let test_memory_create_bounds () =
  Tb.run (fun tb ->
      let pa, _, _, _ = two_node_setup tb in
      let buf = Process.alloc pa 10 in
      Alcotest.check (result_t Alcotest.int) "oversized extent"
        (Error Error.Bounds)
        (Api.memory_create pa ~off:4 ~len:8 buf Perms.rw))

(* ------------------------------------------------------------------ *)
(* Windowed / multi-stream copy engine                                 *)
(* ------------------------------------------------------------------ *)

let copy_config ?(net_gbps = 10) ~window ~streams () =
  {
    Fractos_net.Config.default with
    net_bandwidth_bps = net_gbps * 1_000_000_000;
    copy_window = window;
    copy_streams = streams;
  }

(* Cross-node copy round trip at the given knobs; returns elapsed time. *)
let timed_copy ?net_gbps ~window ~streams n =
  Tb.run ~config:(copy_config ?net_gbps ~window ~streams ()) (fun tb ->
      let pa, pb, _, _ = two_node_setup tb in
      let src_buf = Process.alloc pa n in
      let g = Prng.create ~seed:(n + (window * 131) + streams) in
      Prng.fill_bytes g src_buf.Membuf.data;
      let dst_buf = Process.alloc pb n in
      let src = ok_exn (Api.memory_create pa src_buf Perms.ro) in
      let dst =
        Tb.grant ~src:pb ~dst:pa
          (ok_exn (Api.memory_create pb dst_buf Perms.rw))
      in
      let t0 = Engine.now () in
      ok_exn (Api.memory_copy pa ~src ~dst);
      let elapsed = Engine.now () - t0 in
      check_bool
        (Printf.sprintf "bytes equal (n=%d window=%d streams=%d)" n window
           streams)
        true
        (Bytes.equal src_buf.Membuf.data dst_buf.Membuf.data);
      elapsed)

let test_copy_pipelined_single_chunk () =
  (* a sub-chunk copy must still work when the pipelined engine is on *)
  ignore (timed_copy ~window:8 ~streams:4 100)

let test_copy_pipelined_faster_on_fast_fabric () =
  (* On a 100 Gbps fabric the serial engine is latency-bound on its
     per-chunk staging round trip; the windowed multi-stream engine must
     recover at least 2x effective bandwidth on a 1 MiB copy (the ISSUE's
     acceptance bar, also asserted by bin/bench_smoke.sh). *)
  let n = 1 lsl 20 in
  let serial = timed_copy ~net_gbps:100 ~window:1 ~streams:1 n in
  let pipelined = timed_copy ~net_gbps:100 ~window:8 ~streams:4 n in
  check_bool
    (Printf.sprintf "pipelined (%s) at least 2x faster than serial (%s)"
       (Time.to_string pipelined) (Time.to_string serial))
    true
    (2 * pipelined <= serial)

let test_copy_pipelined_default_knobs_identical () =
  (* window = streams = 1 must reproduce the serial engine bit-for-bit:
     same simulated completion time, not just same bytes *)
  let n = 300_000 in
  let explicit = timed_copy ~window:1 ~streams:1 n in
  let default_cfg =
    Tb.run (fun tb ->
        let pa, pb, _, _ = two_node_setup tb in
        let src_buf = Process.alloc pa n in
        let g = Prng.create ~seed:(n + 131 + 1) in
        Prng.fill_bytes g src_buf.Membuf.data;
        let dst_buf = Process.alloc pb n in
        let src = ok_exn (Api.memory_create pa src_buf Perms.ro) in
        let dst =
          Tb.grant ~src:pb ~dst:pa
            (ok_exn (Api.memory_create pb dst_buf Perms.rw))
        in
        let t0 = Engine.now () in
        ok_exn (Api.memory_copy pa ~src ~dst);
        Engine.now () - t0)
  in
  check_int "default config = serial engine timing" explicit default_cfg

let test_copy_pipelined_decoupled_from_invokes () =
  (* A bulk pipelined copy stages through the controller's copy engine,
     not its syscall cores: an unrelated null syscall issued mid-copy must
     not be head-of-line blocked behind ~64 chunk memcpys. *)
  Tb.run ~config:(copy_config ~net_gbps:100 ~window:8 ~streams:4 ())
    (fun tb ->
      let pa, pb, _, _ = two_node_setup tb in
      let n = 1 lsl 20 in
      let src_buf = Process.alloc pa n in
      let dst_buf = Process.alloc pb n in
      let src = ok_exn (Api.memory_create pa src_buf Perms.ro) in
      let dst =
        Tb.grant ~src:pb ~dst:pa
          (ok_exn (Api.memory_create pb dst_buf Perms.rw))
      in
      let t0 = Engine.now () in
      ignore (ok_exn (Api.null pa));
      let idle_null = Engine.now () - t0 in
      let copy_done = Api.memory_copy_async pa ~src ~dst in
      (* land in the middle of the copy's lifetime *)
      Engine.sleep (Time.us 30);
      let t1 = Engine.now () in
      ignore (ok_exn (Api.null pa));
      let busy_null = Engine.now () - t1 in
      ok_exn (Ivar.await copy_done);
      check_bool
        (Printf.sprintf "null during copy (%s) close to idle null (%s)"
           (Time.to_string busy_null) (Time.to_string idle_null))
        true
        (busy_null <= 3 * idle_null))

let test_invalid_cid () =
  Tb.run (fun tb ->
      let pa, _, _, _ = two_node_setup tb in
      Alcotest.check (result_t Alcotest.unit) "bogus cid"
        (Error Error.Invalid_cap)
        (Api.request_invoke pa 9999))

(* ------------------------------------------------------------------ *)
(* memory_diminish                                                    *)
(* ------------------------------------------------------------------ *)

let test_diminish_extent_and_write_through () =
  Tb.run (fun tb ->
      let pa, _, _, _ = two_node_setup tb in
      let buf = Process.alloc pa 32 in
      Membuf.fill buf '.';
      let whole = ok_exn (Api.memory_create pa buf Perms.rw) in
      (* view of bytes [8, 16) *)
      let view =
        ok_exn (Api.memory_diminish pa whole ~off:8 ~len:8 ~drop:Perms.none)
      in
      let src_buf = Process.alloc pa 8 in
      Membuf.write src_buf ~off:0 (Bytes.of_string "ABCDEFGH");
      let src = ok_exn (Api.memory_create pa src_buf Perms.ro) in
      ok_exn (Api.memory_copy pa ~src ~dst:view);
      check_str "written through view at offset"
        "........ABCDEFGH........"
        (Bytes.to_string (Membuf.read buf ~off:0 ~len:24)))

let test_diminish_drops_perms () =
  Tb.run (fun tb ->
      let pa, _, _, _ = two_node_setup tb in
      let buf = Process.alloc pa 16 in
      let whole = ok_exn (Api.memory_create pa buf Perms.rw) in
      let ro_view =
        ok_exn (Api.memory_diminish pa whole ~off:0 ~len:16 ~drop:Perms.wo)
      in
      let src = ok_exn (Api.memory_create pa (Process.alloc pa 16) Perms.ro) in
      Alcotest.check (result_t Alcotest.unit) "view is read-only"
        (Error Error.Perm_denied)
        (Api.memory_copy pa ~src ~dst:ro_view))

let test_diminish_bounds () =
  Tb.run (fun tb ->
      let pa, _, _, _ = two_node_setup tb in
      let buf = Process.alloc pa 16 in
      let whole = ok_exn (Api.memory_create pa buf Perms.rw) in
      Alcotest.check (result_t Alcotest.int) "past end"
        (Error Error.Bounds)
        (Api.memory_diminish pa whole ~off:8 ~len:16 ~drop:Perms.none))

let test_diminish_of_diminish () =
  Tb.run (fun tb ->
      let pa, _, _, _ = two_node_setup tb in
      let buf = Process.alloc pa 32 in
      Membuf.fill buf '.';
      let whole = ok_exn (Api.memory_create pa buf Perms.rw) in
      let v1 = ok_exn (Api.memory_diminish pa whole ~off:8 ~len:16 ~drop:Perms.none) in
      let v2 = ok_exn (Api.memory_diminish pa v1 ~off:4 ~len:4 ~drop:Perms.none) in
      let src_buf = Process.alloc pa 4 in
      Membuf.write src_buf ~off:0 (Bytes.of_string "XYZW");
      let src = ok_exn (Api.memory_create pa src_buf Perms.ro) in
      ok_exn (Api.memory_copy pa ~src ~dst:v2);
      (* v2 covers parent offsets 8+4 = 12..16 *)
      check_str "nested view offset" "XYZW"
        (Bytes.to_string (Membuf.read buf ~off:12 ~len:4)))

let test_diminish_remote_owner () =
  Tb.run (fun tb ->
      let pa, pb, _, _ = two_node_setup tb in
      let buf = Process.alloc pb 32 in
      Membuf.fill buf '.';
      let whole_b = ok_exn (Api.memory_create pb buf Perms.rw) in
      let whole_a = Tb.grant ~src:pb ~dst:pa whole_b in
      (* pa diminishes a capability whose object lives at pb's controller *)
      let view =
        ok_exn (Api.memory_diminish pa whole_a ~off:0 ~len:8 ~drop:Perms.wo)
      in
      let dst = ok_exn (Api.memory_create pa (Process.alloc pa 8) Perms.rw) in
      ok_exn (Api.memory_copy pa ~src:view ~dst))

(* ------------------------------------------------------------------ *)
(* Requests: create, invoke, receive                                  *)
(* ------------------------------------------------------------------ *)

let test_request_local_invoke () =
  Tb.run (fun tb ->
      let a = Tb.add_host tb "alpha" in
      let ca = Tb.add_ctrl tb ~on:a in
      let server = Tb.add_proc tb ~on:a ~ctrl:ca "server" in
      let client = Tb.add_proc tb ~on:a ~ctrl:ca "client" in
      let req =
        ok_exn
          (Api.request_create server ~tag:"echo" ~imms:[ Args.of_int 42 ] ())
      in
      let req_c = Tb.grant ~src:server ~dst:client req in
      ok_exn (Api.request_invoke client req_c);
      let d = Api.receive server in
      check_str "tag" "echo" d.State.d_tag;
      check_int "imm" 42 (Args.to_int (List.nth d.State.d_imms 0)))

let test_request_remote_invoke () =
  Tb.run (fun tb ->
      let pa, pb, _, _ = two_node_setup tb in
      let req =
        ok_exn (Api.request_create pb ~tag:"work" ~imms:[ Args.of_int 7 ] ())
      in
      let req_a = Tb.grant ~src:pb ~dst:pa req in
      ok_exn (Api.request_invoke pa req_a);
      let d = Api.receive pb in
      check_str "tag" "work" d.State.d_tag;
      check_int "imm" 7 (Args.to_int (List.hd d.State.d_imms)))

let test_request_cap_delegation_on_invoke () =
  (* Invoking a Request whose args include a Memory capability delegates
     that capability to the provider, who can then use it. *)
  Tb.run (fun tb ->
      let pa, pb, _, _ = two_node_setup tb in
      (* client pa registers a buffer and passes it to server pb *)
      let buf = Process.alloc pa 16 in
      Membuf.write buf ~off:0 (Bytes.of_string "client-data!!!!!");
      let mem = ok_exn (Api.memory_create pa buf Perms.ro) in
      let base = ok_exn (Api.request_create pb ~tag:"read-my-buf" ()) in
      let base_a = Tb.grant ~src:pb ~dst:pa base in
      let refined = ok_exn (Api.request_derive pa base_a ~caps:[ mem ] ()) in
      ok_exn (Api.request_invoke pa refined);
      let d = Api.receive pb in
      check_int "one cap" 1 (List.length d.State.d_caps);
      let delegated = List.hd d.State.d_caps in
      (* server copies out of the delegated capability *)
      let dst_buf = Process.alloc pb 16 in
      let dst = ok_exn (Api.memory_create pb dst_buf Perms.rw) in
      ok_exn (Api.memory_copy pb ~src:delegated ~dst);
      check_str "server read client data" "client-data!!!!!"
        (Bytes.to_string dst_buf.Membuf.data))

let test_request_refinement_order () =
  (* Derived arguments append after the parent's (parent-first). *)
  Tb.run (fun tb ->
      let pa, pb, _, _ = two_node_setup tb in
      let base =
        ok_exn (Api.request_create pb ~tag:"t" ~imms:[ Args.of_int 1 ] ())
      in
      let base_a = Tb.grant ~src:pb ~dst:pa base in
      let d1 = ok_exn (Api.request_derive pa base_a ~imms:[ Args.of_int 2 ] ()) in
      let d2 = ok_exn (Api.request_derive pa d1 ~imms:[ Args.of_int 3 ] ()) in
      ok_exn (Api.request_invoke pa d2);
      let d = Api.receive pb in
      Alcotest.(check (list int))
        "parent-first order" [ 1; 2; 3 ]
        (List.map Args.to_int d.State.d_imms))

let test_request_three_controller_chain () =
  (* base at ctrl-c (provider pc); derived at ctrl-b by pb; derived again
     at ctrl-a by pa; invocation forwards a->b->c. *)
  Tb.run (fun tb ->
      let setups = Tb.nodes_with_ctrls tb Tb.Ctrl_cpu [ "na"; "nb"; "nc" ] in
      let sa = List.nth setups 0
      and sb = List.nth setups 1
      and sc = List.nth setups 2 in
      let pa = Tb.add_proc tb ~on:sa.Tb.node ~ctrl:sa.Tb.ctrl "pa" in
      let pb = Tb.add_proc tb ~on:sb.Tb.node ~ctrl:sb.Tb.ctrl "pb" in
      let pc = Tb.add_proc tb ~on:sc.Tb.node ~ctrl:sc.Tb.ctrl "pc" in
      let base =
        ok_exn (Api.request_create pc ~tag:"chain" ~imms:[ Args.of_int 10 ] ())
      in
      let base_b = Tb.grant ~src:pc ~dst:pb base in
      let der_b = ok_exn (Api.request_derive pb base_b ~imms:[ Args.of_int 20 ] ()) in
      let der_a0 = Tb.grant ~src:pb ~dst:pa der_b in
      let der_a = ok_exn (Api.request_derive pa der_a0 ~imms:[ Args.of_int 30 ] ()) in
      ok_exn (Api.request_invoke pa der_a);
      let d = Api.receive pc in
      Alcotest.(check (list int))
        "args accumulated root-first" [ 10; 20; 30 ]
        (List.map Args.to_int d.State.d_imms))

let test_sync_rpc_pattern () =
  (* The paper's A -> B -> A' synchronous-RPC encoding via continuations. *)
  Tb.run (fun tb ->
      let pa, pb, _, _ = two_node_setup tb in
      (* server request *)
      let svc = ok_exn (Api.request_create pb ~tag:"double" ()) in
      let svc_a = Tb.grant ~src:pb ~dst:pa svc in
      (* client's completion request (continuation) *)
      let done_req = ok_exn (Api.request_create pa ~tag:"done" ()) in
      (* server fiber: receive, compute, invoke continuation with result *)
      Engine.spawn (fun () ->
          let d = Api.receive pb in
          let x = Args.to_int (List.hd d.State.d_imms) in
          let k = List.hd d.State.d_caps in
          let k' =
            ok_exn (Api.request_derive pb k ~imms:[ Args.of_int (2 * x) ] ())
          in
          ok_exn (Api.request_invoke pb k'));
      let call =
        ok_exn
          (Api.request_derive pa svc_a ~imms:[ Args.of_int 21 ]
             ~caps:[ done_req ] ())
      in
      ok_exn (Api.request_invoke pa call);
      let resp = Api.receive pa in
      check_str "continuation tag" "done" resp.State.d_tag;
      check_int "result" 42 (Args.to_int (List.hd resp.State.d_imms)))

let test_invoke_memory_cap_rejected () =
  Tb.run (fun tb ->
      let pa, _, _, _ = two_node_setup tb in
      let mem =
        ok_exn (Api.memory_create pa (Process.alloc pa 8) Perms.rw)
      in
      match Api.request_invoke pa mem with
      | Error (Error.Bad_argument _) -> ()
      | Ok () -> Alcotest.fail "invoked a memory object"
      | Error e -> Alcotest.failf "unexpected: %s" (Error.to_string e))

let test_invoke_dead_provider () =
  Tb.run (fun tb ->
      let pa, pb, _, cb = two_node_setup tb in
      let req = ok_exn (Api.request_create pb ~tag:"t" ()) in
      let req_a = Tb.grant ~src:pb ~dst:pa req in
      Controller.fail_process cb pb;
      match Api.request_invoke pa req_a with
      | Error (Error.Provider_dead | Error.Revoked) -> ()
      | Ok () -> Alcotest.fail "invoked dead provider"
      | Error e -> Alcotest.failf "unexpected: %s" (Error.to_string e))

(* ------------------------------------------------------------------ *)
(* Revocation                                                         *)
(* ------------------------------------------------------------------ *)

let test_revoke_then_use () =
  Tb.run (fun tb ->
      let pa, pb, _, _ = two_node_setup tb in
      let req = ok_exn (Api.request_create pb ~tag:"t" ()) in
      let req_a = Tb.grant ~src:pb ~dst:pa req in
      ok_exn (Api.cap_revoke pb req);
      match Api.request_invoke pa req_a with
      | Error (Error.Revoked | Error.Invalid_cap) -> ()
      | Ok () -> Alcotest.fail "invoked revoked request"
      | Error e -> Alcotest.failf "unexpected: %s" (Error.to_string e))

let test_revtree_child_independent () =
  Tb.run (fun tb ->
      let pa, pb, _, _ = two_node_setup tb in
      let req = ok_exn (Api.request_create pb ~tag:"t" ()) in
      (* two separately revocable handles for two clients *)
      let h1 = ok_exn (Api.cap_create_revtree pb req) in
      let h2 = ok_exn (Api.cap_create_revtree pb req) in
      let h1_a = Tb.grant ~src:pb ~dst:pa h1 in
      let h2_a = Tb.grant ~src:pb ~dst:pa h2 in
      ok_exn (Api.cap_revoke pb h1);
      (match Api.request_invoke pa h1_a with
      | Error (Error.Revoked | Error.Invalid_cap) -> ()
      | _ -> Alcotest.fail "revoked handle still usable");
      (* sibling handle and the root are unaffected *)
      ok_exn (Api.request_invoke pa h2_a);
      let d = Api.receive pb in
      check_str "tag" "t" d.State.d_tag)

let test_revoke_parent_kills_children () =
  Tb.run (fun tb ->
      let pa, pb, _, _ = two_node_setup tb in
      let req = ok_exn (Api.request_create pb ~tag:"t" ()) in
      let child = ok_exn (Api.cap_create_revtree pb req) in
      let grandchild = ok_exn (Api.cap_create_revtree pb child) in
      let g_a = Tb.grant ~src:pb ~dst:pa grandchild in
      ok_exn (Api.cap_revoke pb req);
      match Api.request_invoke pa g_a with
      | Error (Error.Revoked | Error.Invalid_cap) -> ()
      | Ok () -> Alcotest.fail "grandchild survived root revocation"
      | Error e -> Alcotest.failf "unexpected: %s" (Error.to_string e))

let test_revoke_diminished_view_parent () =
  Tb.run (fun tb ->
      let pa, _, _, _ = two_node_setup tb in
      let buf = Process.alloc pa 16 in
      let whole = ok_exn (Api.memory_create pa buf Perms.rw) in
      let view = ok_exn (Api.memory_diminish pa whole ~off:0 ~len:8 ~drop:Perms.none) in
      ok_exn (Api.cap_revoke pa whole);
      let src = ok_exn (Api.memory_create pa (Process.alloc pa 8) Perms.ro) in
      match Api.memory_copy pa ~src ~dst:view with
      | Error (Error.Revoked | Error.Invalid_cap) -> ()
      | Ok () -> Alcotest.fail "view survived source revocation"
      | Error e -> Alcotest.failf "unexpected: %s" (Error.to_string e))

let test_cleanup_removes_foreign_entries () =
  Tb.run (fun tb ->
      let pa, pb, _, cb = two_node_setup tb in
      let req = ok_exn (Api.request_create pb ~tag:"t" ()) in
      let req_a = Tb.grant ~src:pb ~dst:pa req in
      ok_exn (Api.cap_revoke pb req);
      (* allow the async cleanup broadcast to run *)
      Engine.sleep (Time.ms 1);
      (match Process.controller pa with
      | Some ca -> (
        match Controller.addr_of_cid ca pa req_a with
        | None -> ()
        | Some _ -> Alcotest.fail "dangling entry survived cleanup")
      | None -> Alcotest.fail "unattached");
      check_int "owner table tombstones cleared" 0 (Controller.tombstones cb))

let test_derived_request_dies_with_base () =
  (* Invoking a derived Request whose base was revoked is accepted at the
     (still-valid) local link of the chain — invocations acknowledge at the
     first validated owner — but the chain dies at the revoked base: the
     provider must never see a delivery. *)
  Tb.run (fun tb ->
      let pa, pb, _, _ = two_node_setup tb in
      let base = ok_exn (Api.request_create pb ~tag:"t" ()) in
      let base_a = Tb.grant ~src:pb ~dst:pa base in
      let derived = ok_exn (Api.request_derive pa base_a ~imms:[ Args.of_int 1 ] ()) in
      ok_exn (Api.cap_revoke pb base);
      Engine.sleep (Time.ms 1);
      (match Api.request_invoke pa derived with
      | Error (Error.Revoked | Error.Invalid_cap) | Ok () -> ()
      | Error e -> Alcotest.failf "unexpected: %s" (Error.to_string e));
      Engine.sleep (Time.ms 1);
      check_int "no delivery through revoked base" 0
        (Sim.Channel.length pb.State.inbox))

(* ------------------------------------------------------------------ *)
(* Stale capabilities / controller failure                            *)
(* ------------------------------------------------------------------ *)

let test_controller_fail_unreachable () =
  Tb.run (fun tb ->
      let pa, pb, _, cb = two_node_setup tb in
      let req = ok_exn (Api.request_create pb ~tag:"t" ()) in
      let req_a = Tb.grant ~src:pb ~dst:pa req in
      Controller.fail cb;
      match Api.request_invoke pa req_a with
      | Error Error.Ctrl_unreachable -> ()
      | Ok () -> Alcotest.fail "invoked through dead controller"
      | Error e -> Alcotest.failf "unexpected: %s" (Error.to_string e))

let test_controller_restart_stale () =
  Tb.run (fun tb ->
      let pa, pb, _, cb = two_node_setup tb in
      let req = ok_exn (Api.request_create pb ~tag:"t" ()) in
      let req_a = Tb.grant ~src:pb ~dst:pa req in
      Controller.fail cb;
      Controller.restart cb;
      (* pre-reboot capability is now eagerly detected as stale *)
      match Api.request_invoke pa req_a with
      | Error Error.Stale -> ()
      | Ok () -> Alcotest.fail "stale capability accepted"
      | Error e -> Alcotest.failf "unexpected: %s" (Error.to_string e))

let test_controller_restart_serves_new_procs () =
  Tb.run (fun tb ->
      let _, _, _, cb = two_node_setup tb in
      Controller.fail cb;
      Controller.restart cb;
      check_bool "running again" true (Controller.is_running cb))

let test_syscall_to_failed_controller () =
  Tb.run (fun tb ->
      let pa, _, ca, _ = two_node_setup tb in
      Controller.fail ca;
      (* pa is managed by ca, so it is also dead; but test transport-level
         rejection via a process attached later to the dead ctrl's queue *)
      match Api.null pa with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "syscall through dead controller succeeded")

(* ------------------------------------------------------------------ *)
(* Monitors                                                           *)
(* ------------------------------------------------------------------ *)

let test_monitor_receive_on_revoke () =
  Tb.run (fun tb ->
      let pa, pb, _, _ = two_node_setup tb in
      let req = ok_exn (Api.request_create pb ~tag:"svc" ()) in
      let req_a = Tb.grant ~src:pb ~dst:pa req in
      ok_exn (Api.monitor_receive pa req_a ~cb:77);
      ok_exn (Api.cap_revoke pb req);
      match Api.monitor_next pa with
      | State.Receive_cb 77 -> ()
      | _ -> Alcotest.fail "wrong monitor event")

let test_monitor_delegate_counts () =
  Tb.run (fun tb ->
      let pa, pb, _, _ = two_node_setup tb in
      (* service pb creates a per-client handle, monitors it, delegates it
         via a request invocation *)
      let handle = ok_exn (Api.request_create pb ~tag:"client-handle" ()) in
      ok_exn (Api.monitor_delegate pb handle ~cb:5);
      (* delegate by passing as a capability argument to pa *)
      let carrier = ok_exn (Api.request_create pa ~tag:"carrier" ()) in
      let carrier_b = Tb.grant ~src:pa ~dst:pb carrier in
      let send = ok_exn (Api.request_derive pb carrier_b ~caps:[ handle ] ()) in
      ok_exn (Api.request_invoke pb send);
      let d = Api.receive pa in
      let got = List.hd d.State.d_caps in
      Engine.sleep (Time.ms 1);
      (* client drops its capability -> counter reaches zero -> callback *)
      ok_exn (Api.cap_revoke pa got);
      Engine.sleep (Time.ms 1);
      match Api.try_monitor_next pb with
      | Some (State.Delegate_cb 5) -> ()
      | Some _ -> Alcotest.fail "wrong event"
      | None -> Alcotest.fail "no delegate callback")

let test_monitor_delegate_multiple_clients () =
  Tb.run (fun tb ->
      let pa, pb, _, _ = two_node_setup tb in
      let handle = ok_exn (Api.request_create pb ~tag:"h" ()) in
      ok_exn (Api.monitor_delegate pb handle ~cb:9);
      let carrier = ok_exn (Api.request_create pa ~tag:"carrier" ()) in
      let carrier_b = Tb.grant ~src:pa ~dst:pb carrier in
      (* delegate twice *)
      let send1 = ok_exn (Api.request_derive pb carrier_b ~caps:[ handle ] ()) in
      ok_exn (Api.request_invoke pb send1);
      let d1 = Api.receive pa in
      let send2 = ok_exn (Api.request_derive pb carrier_b ~caps:[ handle ] ()) in
      ok_exn (Api.request_invoke pb send2);
      let d2 = Api.receive pa in
      Engine.sleep (Time.ms 1);
      ok_exn (Api.cap_revoke pa (List.hd d1.State.d_caps));
      Engine.sleep (Time.ms 1);
      check_bool "no callback after first drop" true
        (Api.try_monitor_next pb = None);
      ok_exn (Api.cap_revoke pa (List.hd d2.State.d_caps));
      Engine.sleep (Time.ms 1);
      check_bool "callback after second drop" true
        (Api.try_monitor_next pb = Some (State.Delegate_cb 9)))

let test_monitor_failure_translation () =
  (* A provider failure is observed by clients via monitor_receive. *)
  Tb.run (fun tb ->
      let pa, pb, _, cb = two_node_setup tb in
      let req = ok_exn (Api.request_create pb ~tag:"svc" ()) in
      let req_a = Tb.grant ~src:pb ~dst:pa req in
      ok_exn (Api.monitor_receive pa req_a ~cb:13);
      Controller.fail_process cb pb;
      Engine.sleep (Time.ms 1);
      check_bool "failure translated to revocation" true
        (Api.try_monitor_next pa = Some (State.Receive_cb 13)))

let test_monitor_delegate_client_death () =
  (* Service learns its client died because the delegated capability is
     dropped by failure handling. *)
  Tb.run (fun tb ->
      let pa, pb, ca, _ = two_node_setup tb in
      let handle = ok_exn (Api.request_create pb ~tag:"h" ()) in
      ok_exn (Api.monitor_delegate pb handle ~cb:21);
      let carrier = ok_exn (Api.request_create pa ~tag:"carrier" ()) in
      let carrier_b = Tb.grant ~src:pa ~dst:pb carrier in
      let send = ok_exn (Api.request_derive pb carrier_b ~caps:[ handle ] ()) in
      ok_exn (Api.request_invoke pb send);
      let _ = Api.receive pa in
      Engine.sleep (Time.ms 1);
      Controller.fail_process ca pa;
      Engine.sleep (Time.ms 1);
      check_bool "service notified of client death" true
        (Api.try_monitor_next pb = Some (State.Delegate_cb 21)))

(* ------------------------------------------------------------------ *)
(* Process failure translation                                        *)
(* ------------------------------------------------------------------ *)

let test_process_failure_invalidates_memory () =
  Tb.run (fun tb ->
      let pa, pb, ca, _ = two_node_setup tb in
      let buf = Process.alloc pa 16 in
      let mem_a = ok_exn (Api.memory_create pa buf Perms.rw) in
      let mem_b = Tb.grant ~src:pa ~dst:pb mem_a in
      Controller.fail_process ca pa;
      Engine.sleep (Time.ms 1);
      let dst = ok_exn (Api.memory_create pb (Process.alloc pb 16) Perms.rw) in
      match Api.memory_copy pb ~src:mem_b ~dst with
      | Error (Error.Revoked | Error.Invalid_cap) -> ()
      | Ok () -> Alcotest.fail "dead process's memory still readable"
      | Error e -> Alcotest.failf "unexpected: %s" (Error.to_string e))

let test_node_failure () =
  Tb.run (fun tb ->
      let pa, pb, _, _ = two_node_setup tb in
      let req = ok_exn (Api.request_create pb ~tag:"t" ()) in
      let req_a = Tb.grant ~src:pb ~dst:pa req in
      (* beta (provider node + its controller) loses power *)
      Tb.fail_node tb (Process.node pb);
      check_bool "provider dead" false (Process.is_alive pb);
      (match Api.request_invoke pa req_a with
      | Error Error.Ctrl_unreachable -> ()
      | Ok () -> Alcotest.fail "invoked through a dead node"
      | Error e -> Alcotest.failf "unexpected: %s" (Error.to_string e));
      (* alpha is unaffected *)
      ignore (ok_exn (Api.null pa)))

let test_node_failure_remote_ctrl () =
  (* A process whose controller survives on another machine is failed
     through the channel-severed path, with full revocation translation. *)
  Tb.run (fun tb ->
      let a = Tb.add_host tb "alpha" in
      let b = Tb.add_host tb "beta" in
      let ca = Tb.add_ctrl tb ~on:a in
      (* pb lives on beta but is managed by alpha's controller *)
      let pa = Tb.add_proc tb ~on:a ~ctrl:ca "pa" in
      let pb = Tb.add_proc tb ~on:b ~ctrl:ca "pb" in
      let req = ok_exn (Api.request_create pb ~tag:"t" ()) in
      let req_a = Tb.grant ~src:pb ~dst:pa req in
      ok_exn (Api.monitor_receive pa req_a ~cb:99);
      Tb.fail_node tb b;
      Engine.sleep (Time.ms 1);
      check_bool "watcher notified of node death" true
        (Api.try_monitor_next pa = Some (State.Receive_cb 99)))

(* ------------------------------------------------------------------ *)
(* Quotas and delegation tracking                                     *)
(* ------------------------------------------------------------------ *)

let test_capspace_quota () =
  let config = { Fractos_net.Config.default with capspace_quota = 4 } in
  Tb.run ~config (fun tb ->
      let pa, _, _, _ = two_node_setup tb in
      let buf = Process.alloc pa 16 in
      let rec fill n =
        match Api.memory_create pa buf Perms.ro with
        | Ok _ -> fill (n + 1)
        | Error Error.Quota_exceeded -> n
        | Error e -> Alcotest.failf "unexpected: %s" (Error.to_string e)
      in
      check_int "quota enforced" 4 (fill 0))

let test_track_delegations_cleanup () =
  (* Under the (rejected) delegation-tracking design, revocation needs no
     broadcast: the tombstone dies when the reference count drains. *)
  let config = { Fractos_net.Config.default with track_delegations = true } in
  Tb.run ~config (fun tb ->
      let pa, pb, _, cb = two_node_setup tb in
      let req = ok_exn (Api.request_create pb ~tag:"t" ()) in
      let req_a = Tb.grant ~src:pb ~dst:pa req in
      Engine.sleep (Time.ms 1);
      ok_exn (Api.cap_revoke pb req);
      Engine.sleep (Time.ms 1);
      (* the remote holder still references it: tombstone survives *)
      check_int "tombstone held by remote ref" 1 (Controller.tombstones cb);
      (match Api.request_invoke pa req_a with
      | Error (Error.Revoked | Error.Invalid_cap) -> ()
      | Ok () -> Alcotest.fail "revoked object still usable"
      | Error e -> Alcotest.failf "unexpected: %s" (Error.to_string e));
      (* dropping the last reference reclaims the tombstone (the syscall
         reports Revoked — the object is already dead — but the entry is
         dropped and the reference count decremented) *)
      (match Api.cap_revoke pa req_a with
      | Ok () | Error Error.Revoked -> ()
      | Error e -> Alcotest.failf "unexpected: %s" (Error.to_string e));
      Engine.sleep (Time.ms 1);
      check_int "tombstone reclaimed" 0 (Controller.tombstones cb))

let test_track_delegations_critical_path_cost () =
  (* The point of the paper's design: tracking puts messages on the
     delegation critical path. Count network messages for an RPC carrying
     4 capabilities under both designs. *)
  let count ~track =
    let config =
      { Fractos_net.Config.default with track_delegations = track }
    in
    Tb.run ~config (fun tb ->
        let pa, pb, _, _ = two_node_setup tb in
        Engine.spawn (fun () ->
            let rec loop () =
              let d = Api.receive pb in
              (match List.rev d.State.d_caps with
              | k :: _ -> ignore (Api.request_invoke pb k)
              | [] -> ());
              loop ()
            in
            loop ());
        let svc =
          Tb.grant ~src:pb ~dst:pa (ok_exn (Api.request_create pb ~tag:"s" ()))
        in
        let caps =
          List.init 4 (fun _ ->
              ok_exn (Api.memory_create pa (Process.alloc pa 16) Perms.ro))
        in
        let cont = ok_exn (Api.request_create pa ~tag:"k" ()) in
        let call = ok_exn (Api.request_derive pa svc ~caps:(caps @ [ cont ]) ()) in
        Fractos_net.Stats.reset (Fractos_net.Fabric.stats tb.Tb.fabric);
        ok_exn (Api.request_invoke pa call);
        ignore (Api.receive pa);
        Engine.sleep (Time.ms 1);
        (Fractos_net.Stats.census (Fractos_net.Fabric.stats tb.Tb.fabric))
          .net_messages)
  in
  let untracked = count ~track:false in
  let tracked = count ~track:true in
  check_bool
    (Printf.sprintf "tracking adds messages (%d > %d)" tracked untracked)
    true (tracked > untracked)

(* ------------------------------------------------------------------ *)
(* Congestion control                                                 *)
(* ------------------------------------------------------------------ *)

let test_congestion_window () =
  let config = { Fractos_net.Config.default with congestion_window = 2 } in
  Tb.run ~config (fun tb ->
      let pa, pb, _, _ = two_node_setup tb in
      let req = ok_exn (Api.request_create pb ~tag:"t" ()) in
      let req_a = Tb.grant ~src:pb ~dst:pa req in
      (* Fire 6 concurrent invocations without the provider draining its
         queue: only [window] deliveries may be outstanding; the rest are
         back-pressured (their invoke acks are withheld). *)
      let acked = ref 0 in
      for _ = 1 to 6 do
        Engine.spawn (fun () ->
            ok_exn (Api.request_invoke pa req_a);
            incr acked)
      done;
      Engine.sleep (Time.ms 1);
      check_int "only window-many delivered" 2
        (Sim.Channel.length pb.State.inbox);
      check_bool "some invokers back-pressured" true (!acked < 6);
      (* draining returns credits and unblocks the rest *)
      for _ = 1 to 6 do
        ignore (Api.receive pb)
      done;
      Engine.sleep (Time.ms 1);
      check_int "all acked after drain" 6 !acked;
      check_int "inbox drained" 0 (Sim.Channel.length pb.State.inbox))

(* ------------------------------------------------------------------ *)
(* Admission control and doorbell batching                             *)
(* ------------------------------------------------------------------ *)

(* With a doorbell cost split out of c_msg the service loop itself pays
   for each wakeup, so a burst outruns the controller and the syscall
   queue fills; beyond ctrl_queue_bound the controller sheds new work
   with the typed, retryable Overloaded error instead of queueing
   without bound. *)
let test_overload_shed_and_recovery () =
  let config =
    {
      Fractos_net.Config.default with
      c_doorbell = Time.us 5;
      ctrl_queue_bound = 4;
    }
  in
  Tb.run ~config (fun tb ->
      let a = Tb.add_host tb "alpha" in
      let ca = Tb.add_ctrl tb ~on:a in
      let p = Tb.add_proc tb ~on:a ~ctrl:ca "p" in
      let shed0 =
        Fractos_obs.Metrics.counter_value ca.State.cm.State.cm_overloads
      in
      let ok = ref 0 and shed = ref 0 and done_ = ref 0 in
      let n = 64 in
      for _ = 1 to n do
        Engine.spawn (fun () ->
            (match Api.null p with
            | Ok () -> incr ok
            | Error Error.Overloaded -> incr shed
            | Error e -> Alcotest.failf "unexpected: %s" (Error.to_string e));
            incr done_)
      done;
      Engine.sleep (Time.ms 5);
      check_int "every syscall completed or shed" n !done_;
      check_bool (Printf.sprintf "some succeeded (%d)" !ok) true (!ok > 0);
      check_bool (Printf.sprintf "some shed (%d)" !shed) true (!shed > 0);
      check_int "sheds counted" !shed
        (Fractos_obs.Metrics.counter_value ca.State.cm.State.cm_overloads
        - shed0);
      (* once the burst has drained the controller accepts work again *)
      Alcotest.check (result_t Alcotest.unit) "recovers" (Ok ()) (Api.null p))

(* Same doorbell cost, bigger batch: one wakeup's doorbell covers up to
   ctrl_batch queued messages, so a fixed burst finishes sooner. *)
let test_batching_coalesces_doorbell () =
  let makespan batch =
    let config =
      {
        Fractos_net.Config.default with
        c_doorbell = Time.us 2;
        ctrl_batch = batch;
      }
    in
    Tb.run ~config (fun tb ->
        let a = Tb.add_host tb "alpha" in
        let ca = Tb.add_ctrl tb ~on:a in
        let p = Tb.add_proc tb ~on:a ~ctrl:ca "p" in
        ignore ca;
        let n = 32 in
        let done_ = ref 0 in
        let iv = Ivar.create () in
        for _ = 1 to n do
          Engine.spawn (fun () ->
              ok_exn (Api.null p);
              incr done_;
              if !done_ = n then Ivar.fill iv ())
        done;
        Ivar.await iv;
        Engine.now ())
  in
  let serial = makespan 1 in
  let batched = makespan 16 in
  check_bool
    (Printf.sprintf "batched burst faster (%d < %d)" batched serial)
    true (batched < serial)

(* ------------------------------------------------------------------ *)
(* Properties                                                         *)
(* ------------------------------------------------------------------ *)

(* Copy integrity for arbitrary sizes (crosses the chunking boundary). *)
let prop_copy_integrity =
  QCheck.Test.make ~name:"memory_copy integrity at any size" ~count:20
    QCheck.(int_range 1 100_000)
    (fun n ->
      Tb.run (fun tb ->
          let pa, pb, _, _ = two_node_setup tb in
          let src_buf = Process.alloc pa n in
          let g = Prng.create ~seed:n in
          Prng.fill_bytes g src_buf.Membuf.data;
          let dst_buf = Process.alloc pb n in
          let src = ok_exn (Api.memory_create pa src_buf Perms.ro) in
          let dst =
            Tb.grant ~src:pb ~dst:pa
              (ok_exn (Api.memory_create pb dst_buf Perms.rw))
          in
          ok_exn (Api.memory_copy pa ~src ~dst);
          Bytes.equal src_buf.Membuf.data dst_buf.Membuf.data))

(* Copy integrity across the engine's knob space: any (size, window,
   streams) combination must deliver the same bytes, including the
   out-of-order multi-stream arrivals the reorder buffer absorbs. *)
let prop_copy_integrity_knobs =
  QCheck.Test.make ~name:"memory_copy integrity at any window/streams"
    ~count:15
    QCheck.(
      triple (int_range 1 100_000) (int_range 1 16) (int_range 1 8))
    (fun (n, window, streams) ->
      ignore (timed_copy ~window ~streams n);
      (* byte equality is checked (and fails the test) inside timed_copy *)
      true)

(* Derivation never widens permissions. *)
let prop_diminish_monotone =
  let perm_gen =
    QCheck.Gen.oneofl [ Perms.rw; Perms.ro; Perms.wo; Perms.none ]
  in
  QCheck.Test.make ~name:"diminish never adds rights" ~count:30
    (QCheck.make
       QCheck.Gen.(pair perm_gen perm_gen))
    (fun (base, drop) ->
      let derived = Perms.drop base ~drop in
      Perms.subset derived base)

(* Args codec roundtrip. *)
let prop_args_int_roundtrip =
  QCheck.Test.make ~name:"Args int codec roundtrip" ~count:100 QCheck.int
    (fun x -> Args.to_int (Args.of_int x) = x)

let qtest t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "fractos_core"
    [
      ( "plumbing",
        [
          Alcotest.test_case "null roundtrip" `Quick test_null_roundtrip;
          Alcotest.test_case "null latency (Table 3 CPU)" `Quick
            test_null_latency_close_to_paper;
          Alcotest.test_case "null latency (Table 3 sNIC)" `Quick
            test_null_latency_snic_higher;
          Alcotest.test_case "unattached process" `Quick test_unattached_process;
          Alcotest.test_case "invalid cid" `Quick test_invalid_cid;
        ] );
      ( "memory",
        [
          Alcotest.test_case "create+copy local" `Quick
            test_memory_create_and_copy_local;
          Alcotest.test_case "copy cross node" `Quick
            test_memory_copy_cross_node;
          Alcotest.test_case "copy large chunked" `Quick
            test_memory_copy_large_chunked;
          Alcotest.test_case "async copies overlap" `Quick
            test_memory_copy_async_overlap;
          Alcotest.test_case "copy perms" `Quick test_memory_copy_perms;
          Alcotest.test_case "copy bounds" `Quick test_memory_copy_bounds;
          Alcotest.test_case "create bounds" `Quick test_memory_create_bounds;
          qtest prop_copy_integrity;
        ] );
      ( "pipelined copy",
        [
          Alcotest.test_case "single chunk" `Quick
            test_copy_pipelined_single_chunk;
          Alcotest.test_case "2x faster on 100G fabric" `Quick
            test_copy_pipelined_faster_on_fast_fabric;
          Alcotest.test_case "default knobs identical" `Quick
            test_copy_pipelined_default_knobs_identical;
          Alcotest.test_case "decoupled from invokes" `Quick
            test_copy_pipelined_decoupled_from_invokes;
          qtest prop_copy_integrity_knobs;
        ] );
      ( "diminish",
        [
          Alcotest.test_case "extent write-through" `Quick
            test_diminish_extent_and_write_through;
          Alcotest.test_case "drops perms" `Quick test_diminish_drops_perms;
          Alcotest.test_case "bounds" `Quick test_diminish_bounds;
          Alcotest.test_case "nested views" `Quick test_diminish_of_diminish;
          Alcotest.test_case "remote owner" `Quick test_diminish_remote_owner;
          qtest prop_diminish_monotone;
        ] );
      ( "requests",
        [
          Alcotest.test_case "local invoke" `Quick test_request_local_invoke;
          Alcotest.test_case "remote invoke" `Quick test_request_remote_invoke;
          Alcotest.test_case "cap delegation on invoke" `Quick
            test_request_cap_delegation_on_invoke;
          Alcotest.test_case "refinement order" `Quick
            test_request_refinement_order;
          Alcotest.test_case "three-controller chain" `Quick
            test_request_three_controller_chain;
          Alcotest.test_case "sync RPC pattern" `Quick test_sync_rpc_pattern;
          Alcotest.test_case "invoke memory rejected" `Quick
            test_invoke_memory_cap_rejected;
          Alcotest.test_case "dead provider" `Quick test_invoke_dead_provider;
          qtest prop_args_int_roundtrip;
        ] );
      ( "revocation",
        [
          Alcotest.test_case "revoke then use" `Quick test_revoke_then_use;
          Alcotest.test_case "revtree child independent" `Quick
            test_revtree_child_independent;
          Alcotest.test_case "parent kills children" `Quick
            test_revoke_parent_kills_children;
          Alcotest.test_case "diminished view dies with parent" `Quick
            test_revoke_diminished_view_parent;
          Alcotest.test_case "cleanup removes entries" `Quick
            test_cleanup_removes_foreign_entries;
          Alcotest.test_case "derived dies with base" `Quick
            test_derived_request_dies_with_base;
        ] );
      ( "failure",
        [
          Alcotest.test_case "controller unreachable" `Quick
            test_controller_fail_unreachable;
          Alcotest.test_case "stale after restart" `Quick
            test_controller_restart_stale;
          Alcotest.test_case "restart serves again" `Quick
            test_controller_restart_serves_new_procs;
          Alcotest.test_case "syscall to failed ctrl" `Quick
            test_syscall_to_failed_controller;
          Alcotest.test_case "process failure invalidates memory" `Quick
            test_process_failure_invalidates_memory;
          Alcotest.test_case "node failure" `Quick test_node_failure;
          Alcotest.test_case "node failure, remote ctrl" `Quick
            test_node_failure_remote_ctrl;
        ] );
      ( "footprint",
        [
          Alcotest.test_case "footprint report" `Quick (fun () ->
              Tb.run (fun tb ->
                  let pa, pb, _, cb = two_node_setup tb in
                  ignore pa;
                  let r0 = Controller.memory_report cb in
                  check_int "one proc = 64MiB buffers" (64 * 1024 * 1024)
                    r0.Controller.mr_proc_buffers;
                  check_int "one peer" (64 * 1024 * 1024)
                    r0.Controller.mr_peer_buffers;
                  (* objects and capabilities grow the footprint *)
                  let _ = ok_exn (Api.request_create pb ~tag:"x" ()) in
                  let r1 = Controller.memory_report cb in
                  check_bool "object accounted" true
                    (r1.Controller.mr_objects > r0.Controller.mr_objects);
                  check_bool "capability accounted" true
                    (r1.Controller.mr_capspace > r0.Controller.mr_capspace)));
        ] );
      ( "quota-tracking",
        [
          Alcotest.test_case "capspace quota" `Quick test_capspace_quota;
          Alcotest.test_case "refcount cleanup" `Quick
            test_track_delegations_cleanup;
          Alcotest.test_case "tracking critical-path cost" `Quick
            test_track_delegations_critical_path_cost;
        ] );
      ( "monitors",
        [
          Alcotest.test_case "receive on revoke" `Quick
            test_monitor_receive_on_revoke;
          Alcotest.test_case "delegate counts" `Quick
            test_monitor_delegate_counts;
          Alcotest.test_case "multiple clients" `Quick
            test_monitor_delegate_multiple_clients;
          Alcotest.test_case "failure translation" `Quick
            test_monitor_failure_translation;
          Alcotest.test_case "client death" `Quick
            test_monitor_delegate_client_death;
        ] );
      ( "congestion",
        [ Alcotest.test_case "window backpressure" `Quick test_congestion_window ] );
      ( "admission",
        [
          Alcotest.test_case "overload shed + recovery" `Quick
            test_overload_shed_and_recovery;
          Alcotest.test_case "doorbell batching coalesces" `Quick
            test_batching_coalesces_doorbell;
        ] );
    ]
