(* Property tests for the sharded capability space (ISSUE 8).

   The shard map (Core.Shard) is pure integer arithmetic, so its two
   correctness properties are checked directly by qcheck:

   - totality: with at least one live slot, every key places on exactly
     one live slot — the ownership partition is total and unambiguous;
   - lookup-after-rebalance coherence: after any liveness change
     ("rebalance"), every lookup lands on the first live slot of the
     key's probe ring, so two controllers that agree on the liveness
     bitmap agree on every owner, and a key keeps its owner unless a
     slot between its primary and its owner changed state.

   The directory cache sits on top of the map inside Controller and is
   only observable through a simulation, so its bit-determinism under a
   seeded crash schedule is checked as a property over seeds: the same
   seed must reproduce the same generation/hit/miss/invalidation trace,
   and every run must end directory-coherent (Invariants pass 6). *)

open Fractos_sim
open Fractos_core
module Net = Fractos_net
module Tb = Fractos_testbed.Testbed
module Obs = Fractos_obs

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

(* A shard group: size plus a liveness bitmap with at least one live
   slot (an all-dead group routes nothing, checked separately). *)
let gen_group =
  QCheck.Gen.(
    int_range 1 16 >>= fun n ->
    array_size (return n) bool >>= fun live ->
    int_range 0 (n - 1) >>= fun forced ->
    let live = Array.copy live in
    live.(forced) <- true;
    return (n, live))

let gen_keys = QCheck.Gen.(list_size (int_range 1 64) (int_bound 10_000))
let gen_seed = QCheck.Gen.int_bound 1000

let pp_group (n, live) =
  Printf.sprintf "n=%d live=[%s]" n
    (String.concat ""
       (Array.to_list (Array.map (fun b -> if b then "1" else "0") live)))

(* Reference successor: first live slot at or after [slot], by naive
   scan — the spec the ring probe must match. *)
let ref_route (n, live) slot =
  let rec go i =
    if i >= n then None
    else
      let s = (slot + i) mod n in
      if live.(s) then Some s else go (i + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Totality of the ownership partition                                 *)
(* ------------------------------------------------------------------ *)

let prop_partition_total =
  QCheck.Test.make ~name:"ownership partition is total and unambiguous"
    ~count:300
    (QCheck.make
       ~print:(fun ((g, seed), keys) ->
         Printf.sprintf "%s seed=%d keys=%d" (pp_group g) seed
           (List.length keys))
       QCheck.Gen.(pair (pair gen_group gen_seed) gen_keys))
    (fun (((n, live), seed), keys) ->
      let place k = Shard.place ~n ~live:(fun i -> live.(i)) ~seed k in
      List.for_all
        (fun k ->
          match place k with
          | None ->
            QCheck.Test.fail_reportf "key %d placed nowhere (%s)" k
              (pp_group (n, live))
          | Some s ->
            (* exactly one owner: on a live slot, and the same slot on
               every evaluation (two controllers agreeing on the bitmap
               agree on the owner) *)
            if not (0 <= s && s < n && live.(s)) then
              QCheck.Test.fail_reportf "key %d placed on dead slot %d (%s)" k
                s
                (pp_group (n, live))
            else place k = Some s)
        keys)

let prop_place_respects_live_primary =
  QCheck.Test.make ~name:"live primary owns its own keys" ~count:300
    (QCheck.make
       ~print:(fun ((g, seed), keys) ->
         Printf.sprintf "%s seed=%d keys=%d" (pp_group g) seed
           (List.length keys))
       QCheck.Gen.(pair (pair gen_group gen_seed) gen_keys))
    (fun (((n, live), seed), keys) ->
      List.for_all
        (fun k ->
          let primary = Shard.hash ~seed k mod n in
          (not live.(primary))
          || Shard.place ~n ~live:(fun i -> live.(i)) ~seed k = Some primary)
        keys)

let test_all_dead_routes_nothing () =
  for n = 1 to 8 do
    let live _ = false in
    Alcotest.(check bool)
      (Printf.sprintf "place on %d dead slots" n)
      true
      (Shard.place ~n ~live ~seed:7 42 = None);
    Alcotest.(check bool)
      (Printf.sprintf "route on %d dead slots" n)
      true
      (Shard.route ~n ~live 0 = None)
  done;
  Alcotest.(check bool) "empty group" true (Shard.place ~n:0 ~live:(fun _ -> true) ~seed:0 1 = None)

(* ------------------------------------------------------------------ *)
(* Lookup-after-rebalance coherence                                    *)
(* ------------------------------------------------------------------ *)

let prop_rebalance_coherent =
  QCheck.Test.make
    ~name:"lookup after rebalance lands on first live successor" ~count:300
    (QCheck.make
       ~print:(fun (((n, before), after), (seed, keys)) ->
         Printf.sprintf "%s -> after=[%s] seed=%d keys=%d"
           (pp_group (n, before))
           (String.concat ""
              (Array.to_list
                 (Array.map (fun b -> if b then "1" else "0") after)))
           seed (List.length keys))
       QCheck.Gen.(
         pair
           (gen_group >>= fun (n, before) ->
            (* the rebalance: toggle an arbitrary subset of slots *)
            array_size (return n) bool >>= fun flips ->
            let after = Array.mapi (fun i b -> b <> flips.(i)) before in
            return ((n, before), after))
           (pair gen_seed gen_keys)))
    (fun (((n, before), after), (seed, keys)) ->
      let live_after i = after.(i) in
      List.for_all
        (fun k ->
          let primary = Shard.hash ~seed k mod n in
          (* 1. after the rebalance, the owner is exactly the first live
             successor of the key's primary (or nobody when all died) *)
          let owner = Shard.place ~n ~live:live_after ~seed k in
          if owner <> ref_route (n, after) primary then
            QCheck.Test.fail_reportf
              "key %d: owner disagrees with probe-ring spec" k
          else
            (* 2. stability: if no slot on the probe prefix up to (and
               including) the old owner changed state, the owner did not
               move — a rebalance elsewhere cannot steal the key *)
            match Shard.place ~n ~live:(fun i -> before.(i)) ~seed k with
            | None -> true
            | Some old_owner ->
              let dist = (old_owner - primary + n) mod n in
              let prefix_unchanged =
                let rec go i =
                  i > dist
                  || let s = (primary + i) mod n in
                     before.(s) = after.(s) && go (i + 1)
                in
                go 0
              in
              (not prefix_unchanged) || owner = Some old_owner)
        keys)

let prop_route_identity_while_live =
  QCheck.Test.make ~name:"routing a live slot is the identity" ~count:300
    (QCheck.make
       ~print:(fun (g, slot) -> Printf.sprintf "%s slot=%d" (pp_group g) slot)
       QCheck.Gen.(
         gen_group >>= fun (n, live) ->
         int_range 0 (n - 1) >>= fun slot -> return ((n, live), slot)))
    (fun ((n, live), slot) ->
      let r = Shard.route ~n ~live:(fun i -> live.(i)) slot in
      if live.(slot) then r = Some slot
      else r = ref_route (n, live) slot)

(* ------------------------------------------------------------------ *)
(* Directory-cache bit-determinism under a seeded crash schedule       *)
(* ------------------------------------------------------------------ *)

let shard_config =
  { Net.Config.default with Net.Config.shard_placement = true }

(* Run a three-shard cluster under a [seed]-derived schedule of
   cross-shard invokes interleaved with crash/reboot of the two
   non-client shards, and trace every directory-visible transition:
   shard generation, cache size, and the hit/miss/invalidation
   counters after each step. The trace is the determinism witness. *)
let dir_trace seed =
  Controller.reset_ids ();
  Process.reset_ids ();
  Obs.Metrics.reset ();
  Tb.run ~config:shard_config (fun tb ->
      let hosts = List.init 3 (fun i -> Tb.add_host tb (Printf.sprintf "h%d" i)) in
      let ctrls = List.map (fun h -> Tb.add_ctrl tb ~on:h) hosts in
      let procs =
        List.map2 (fun h c -> Tb.add_proc tb ~on:h ~ctrl:c "p") hosts ctrls
      in
      Tb.shard_all tb;
      List.iter
        (fun p ->
          Engine.spawn (fun () ->
              try
                let rec loop () =
                  ignore (Api.receive p);
                  loop ()
                in
                loop ()
              with _ -> ()))
        procs;
      let ctrls = Array.of_list ctrls in
      let procs = Array.of_list procs in
      let client = procs.(0) in
      let c0 = ctrls.(0) in
      (* one service per shard, all delegated to the shard-0 client *)
      let caps =
        Array.init 3 (fun i ->
            let h =
              Error.ok_exn (Api.request_create procs.(i) ~tag:"svc" ())
            in
            Tb.grant ~src:procs.(i) ~dst:client h)
      in
      let rng = Prng.create ~seed in
      let buf = Buffer.create 256 in
      let snap tag =
        Buffer.add_string buf
          (Printf.sprintf "%s gen=%d cache=%d hits=%d misses=%d inval=%d\n"
             tag (Controller.shard_gen c0) (Controller.dir_cache_size c0)
             (Obs.Metrics.counter_value c0.State.cm.State.cm_dir_hits)
             (Obs.Metrics.counter_value c0.State.cm.State.cm_dir_misses)
             (Obs.Metrics.counter_value
                c0.State.cm.State.cm_dir_invalidations))
      in
      for step = 1 to 24 do
        (match Prng.int rng 6 with
        | 0 | 1 | 2 ->
          (* cross-shard invoke: populates / exercises the directory *)
          let tgt = 1 + Prng.int rng 2 in
          (match
             Api.request_invoke_timeout client ~timeout:(Time.ms 2)
               caps.(tgt)
           with
          | Ok () | Error _ -> ())
        | 3 ->
          ignore
            (Api.request_invoke_timeout client ~timeout:(Time.ms 2) caps.(0))
        | _ ->
          (* crash + reboot a non-client shard: two generation bumps,
             wholesale directory invalidation on next use *)
          let victim = ctrls.(1 + Prng.int rng 2) in
          if Controller.is_running victim then begin
            Controller.fail victim;
            Engine.sleep (Time.us (10 + Prng.int rng 50));
            Controller.restart victim
          end);
        Engine.sleep (Time.us (5 + Prng.int rng 20));
        snap (Printf.sprintf "step%02d" step)
      done;
      (* quiescence, then the coherence obligation of Invariants pass 6:
         no current-generation cache entry may disagree with the shard
         map or name a dead owner *)
      Engine.sleep (Time.ms 5);
      Array.iter
        (fun c ->
          match Controller.dir_incoherences c with
          | [] -> ()
          | v ->
            QCheck.Test.fail_reportf "orphaned directory entries: %s"
              (String.concat "; " v))
        ctrls;
      snap "final";
      Buffer.contents buf)

let prop_dir_invalidation_deterministic =
  QCheck.Test.make
    ~name:"directory invalidation is bit-deterministic under crashes"
    ~count:8
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1000))
    (fun seed ->
      let a = dir_trace seed in
      let b = dir_trace seed in
      if a <> b then
        QCheck.Test.fail_reportf
          "seed %d produced two different directory traces:\n--- run 1\n\
           %s--- run 2\n%s"
          seed a b
      else true)

(* ------------------------------------------------------------------ *)
(* Placement-lease reclamation on forced timeouts                      *)
(* ------------------------------------------------------------------ *)

(* A placement that times out on the caller after the remote home already
   minted the object used to leak that object forever. With
   peer_ack_timeout forced below the controller-to-controller round trip,
   every remote placement times out; the homes must reclaim each leaked
   object when its lease expires, leaving no pending leases and only the
   locally-minted (successful) objects live. *)
let test_place_timeout_reclaims () =
  Controller.reset_ids ();
  Process.reset_ids ();
  Obs.Metrics.reset ();
  let tiny =
    {
      Net.Config.default with
      Net.Config.shard_placement = true;
      (* 1 ns: guaranteed below any peer round trip *)
      peer_ack_timeout = 1;
    }
  in
  Tb.run ~config:tiny (fun tb ->
      let hosts =
        List.init 2 (fun i -> Tb.add_host tb (Printf.sprintf "h%d" i))
      in
      let ctrls = List.map (fun h -> Tb.add_ctrl tb ~on:h) hosts in
      let procs =
        List.map2 (fun h c -> Tb.add_proc tb ~on:h ~ctrl:c "p") hosts ctrls
      in
      Tb.shard_all tb;
      let client = List.hd procs in
      let buf = Membuf.create ~node:(List.hd hosts) 64 in
      let oks = ref 0 and timeouts = ref 0 in
      for _ = 1 to 16 do
        match Api.memory_create client buf Perms.ro with
        | Ok _ -> incr oks
        | Error Error.Timeout -> incr timeouts
        | Error e -> Alcotest.failf "unexpected error %s" (Error.to_string e)
      done;
      Alcotest.(check bool) "some placements timed out" true (!timeouts > 0);
      Alcotest.(check bool) "some placements stayed local" true (!oks > 0);
      (* let every lease expire and the reclaim cleanups settle *)
      Engine.sleep (Time.ms 2);
      List.iter
        (fun c ->
          Alcotest.(check int)
            (Printf.sprintf "ctrl %d has no pending leases" (Controller.id c))
            0
            (Controller.placed_pending_count c))
        ctrls;
      let live =
        List.fold_left (fun n c -> n + Controller.live_objects c) 0 ctrls
      in
      Alcotest.(check int) "timed-out placements were reclaimed" !oks live)

let qtest t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "fractos_shard"
    [
      ( "map",
        [
          qtest prop_partition_total;
          qtest prop_place_respects_live_primary;
          qtest prop_route_identity_while_live;
          Alcotest.test_case "all-dead group routes nothing" `Quick
            test_all_dead_routes_nothing;
        ] );
      ("rebalance", [ qtest prop_rebalance_coherent ]);
      ("directory", [ qtest prop_dir_invalidation_deterministic ]);
      ( "placement",
        [
          Alcotest.test_case "timeout leases reclaimed" `Quick
            test_place_timeout_reclaims;
        ] );
    ]
