(* Router policy properties (pure, qcheck) and the PD disaggregated
   inference workload end to end: prefill -> KV handoff via third-party
   copy -> decode streaming, unified baseline, and crash re-routing. *)

module Sim = Fractos_sim
module Net = Fractos_net
module Core = Fractos_core
module Tb = Fractos_testbed.Testbed
module Svc = Fractos_services.Svc
module Router = Fractos_services.Router
module Pd = Fractos_workloads.Pd

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let qtest t = QCheck_alcotest.to_alcotest t

(* ---------- qcheck generators ---------- *)

(* A pool size and a non-empty live subset of it. *)
let gen_live =
  QCheck.Gen.(
    int_range 1 9 >>= fun n ->
    list_repeat n bool >>= fun flags ->
    let flags = Array.of_list flags in
    (* force at least one live slot deterministically *)
    int_range 0 (n - 1) >|= fun keep ->
    flags.(keep) <- true;
    (n, flags))

let arb_live =
  QCheck.make
    ~print:(fun (n, flags) ->
      Printf.sprintf "n=%d live=%s" n
        (String.concat ""
           (List.map (fun b -> if b then "1" else "0") (Array.to_list flags))))
    gen_live

let gen_backlogs =
  QCheck.Gen.(
    gen_live >>= fun (n, flags) ->
    list_repeat n (int_range 0 20) >|= fun bl -> (n, flags, Array.of_list bl))

let arb_backlogs =
  QCheck.make
    ~print:(fun (n, flags, bl) ->
      Printf.sprintf "n=%d live=%s backlog=[%s]" n
        (String.concat ""
           (List.map (fun b -> if b then "1" else "0") (Array.to_list flags)))
        (String.concat ";" (List.map string_of_int (Array.to_list bl))))
    gen_backlogs

let router ?slack ?seed ~policy ?(backlog = fun _ -> 0) (n, flags) =
  let r = Router.create ?slack ?seed ~policy ~backlog n in
  Array.iteri (fun i live -> if not live then Router.mark_dead r i) flags;
  r

(* Round-robin is fair over the live set: across live_count * k picks,
   every live instance is chosen exactly k times and no dead instance is
   ever chosen. *)
let prop_rr_fair =
  QCheck.Test.make ~name:"round-robin fair over live set" ~count:200 arb_live
    (fun (n, flags) ->
      let r = router ~policy:Router.Round_robin (n, flags) in
      let live = Router.live_count r in
      let k = 3 in
      let counts = Array.make n 0 in
      for _ = 1 to live * k do
        match Router.pick r ~key:0 with
        | None -> QCheck.Test.fail_report "no pick despite live instances"
        | Some i -> counts.(i) <- counts.(i) + 1
      done;
      Array.for_all2
        (fun c l -> if l then c = k else c = 0)
        counts flags)

(* Least-loaded never picks an instance strictly more backlogged than
   some other live instance. *)
let prop_least_loaded =
  QCheck.Test.make ~name:"least-loaded picks a minimum" ~count:200
    arb_backlogs (fun (n, flags, bl) ->
      let r =
        router ~policy:Router.Least_loaded ~backlog:(fun i -> bl.(i))
          (n, flags)
      in
      match Router.pick r ~key:0 with
      | None -> false
      | Some i ->
          flags.(i)
          && Array.for_all2
               (fun b l -> (not l) || bl.(i) <= b)
               bl flags)

(* Cache-aware routing is a deterministic function of (key, live set):
   two routers with the same view agree on every key; a key asks the same
   instance every time; and when the chosen instance dies, only keys that
   mapped to it move (they re-stabilize on a deterministic survivor while
   everyone else's affinity is untouched). *)
let prop_cache_deterministic =
  QCheck.Test.make ~name:"cache-aware deterministic + re-stabilizes"
    ~count:200
    QCheck.(pair arb_live small_nat)
    (fun ((n, flags), key) ->
      let r1 = router ~policy:Router.Cache_aware (n, flags) in
      let r2 = router ~policy:Router.Cache_aware (n, flags) in
      let p1 = Router.pick r1 ~key in
      let agree = p1 = Router.pick r2 ~key && p1 = Router.pick r1 ~key in
      match p1 with
      | None -> false
      | Some chosen ->
          agree
          &&
          if Router.live_count r1 = 1 then true
          else begin
            (* crash the chosen instance: this key must deterministically
               re-route (both routers agree), other keys keep their map *)
            let others =
              List.filter_map
                (fun k ->
                  if k = key then None
                  else
                    match Router.pick r1 ~key:k with
                    | Some i when i <> chosen -> Some (k, i)
                    | _ -> None)
                (List.init 32 (fun i -> key + i))
            in
            Router.mark_dead r1 chosen;
            Router.mark_dead r2 chosen;
            (match Router.pick r1 ~key with
            | None -> false
            | Some moved ->
                moved <> chosen
                && Router.pick r2 ~key = Some moved
                && List.for_all
                     (fun (k, i) -> Router.pick r1 ~key:k = Some i)
                     others)
          end)

(* The slack escape hatch: with slack = 0 affinity always wins; with a
   finite slack, a sufficiently backlogged affine choice loses to the
   least-loaded instance. *)
let test_slack_fallback () =
  let bl = [| 0; 100 |] in
  let affine_of r = Option.get (Router.pick r ~key:42) in
  let r0 =
    Router.create ~slack:0 ~policy:Router.Cache_aware
      ~backlog:(fun i -> bl.(i))
      2
  in
  let affine = affine_of r0 in
  bl.(affine) <- 100;
  bl.(1 - affine) <- 0;
  check_int "slack=0 honors affinity" affine (affine_of r0);
  let r3 =
    Router.create ~slack:3 ~policy:Router.Cache_aware
      ~backlog:(fun i -> bl.(i))
      2
  in
  check_int "backed-up affine falls back" (1 - affine) (affine_of r3)

(* Placement scorer: zero-cost instance wins over a less-loaded remote
   one within slack; past the slack it loses. *)
let test_placement_scorer () =
  let bl = [| 2; 0 |] in
  let cost i = if i = 0 then 0 else 4096 in
  let r =
    Router.create ~slack:3 ~policy:Router.Least_loaded
      ~backlog:(fun i -> bl.(i))
      2
  in
  check_bool "co-located wins within slack" true
    (Router.pick_placed r ~cost ~key:0 () = Some 0);
  bl.(0) <- 10;
  check_bool "drowning co-located loses" true
    (Router.pick_placed r ~cost ~key:0 () = Some 1);
  check_bool "without scorer falls back to policy" true
    (Router.pick_placed r ~key:0 () = Some 1)

(* ---------- PD workload end to end ---------- *)

let pd_setup ?(config = Net.Config.default) ~prefills ~decodes f =
  Core.Controller.reset_ids ();
  Core.Process.reset_ids ();
  Tb.run ~config (fun tb ->
      let names =
        "client"
        :: (List.init prefills (Printf.sprintf "p%d")
           @ List.init decodes (Printf.sprintf "d%d"))
      in
      let setups = Tb.nodes_with_ctrls tb Tb.Ctrl_cpu names in
      let s_client = List.hd setups in
      let rest = List.tl setups in
      let prefill = List.filteri (fun i _ -> i < prefills) rest in
      let decode = List.filteri (fun i _ -> i >= prefills) rest in
      let cproc =
        Tb.add_proc tb ~on:s_client.Tb.node ~ctrl:s_client.Tb.ctrl "pd-client"
      in
      let csvc = Svc.create cproc in
      f tb ~prefill ~decode ~csvc)

let timeout = Sim.Time.ms 50

let test_pd_end_to_end () =
  pd_setup ~prefills:2 ~decodes:2 (fun tb ~prefill ~decode ~csvc ->
      let pool = Pd.deploy tb ~prefill ~decode () in
      let client = Pd.attach pool csvc in
      for i = 0 to 7 do
        let o =
          Core.Error.ok_exn
            (Pd.request client ~prefix:i ~prompt_len:256 ~kv_len:(64 * 1024)
               ~iters:8 ~timeout ())
        in
        check_bool "ttft positive" true (o.Pd.o_ttft > 0);
        check_bool "ttft below completion" true (o.Pd.o_ttft < o.Pd.o_latency)
      done)

let test_pd_unified_baseline () =
  pd_setup ~prefills:2 ~decodes:0 (fun tb ~prefill ~decode:_ ~csvc ->
      let pool = Pd.deploy_unified tb ~nodes:prefill () in
      let client = Pd.attach pool csvc in
      let o =
        Core.Error.ok_exn
          (Pd.request client ~prompt_len:256 ~kv_len:(64 * 1024) ~iters:8
             ~timeout ())
      in
      check_int "unified serves both phases" o.Pd.o_prefill o.Pd.o_decode;
      check_bool "ttft below completion" true (o.Pd.o_ttft < o.Pd.o_latency))

(* Disaggregation pays for the handoff: same request, same engine speeds,
   the split pool's completion is later than the unified pool's because
   of the KV transfer — and both beat a serial client doing the phases
   through two separate RPCs (the workload reproduces the tax the paper
   is about). *)
let test_pd_tax_is_the_copy () =
  let run_one deploy =
    pd_setup ~prefills:1 ~decodes:1 (fun tb ~prefill ~decode ~csvc ->
        let pool = deploy tb ~prefill ~decode in
        let client = Pd.attach pool csvc in
        let o =
          Core.Error.ok_exn
            (Pd.request client ~prompt_len:256 ~kv_len:(256 * 1024) ~iters:4
               ~timeout ())
        in
        o.Pd.o_latency)
  in
  let split = run_one (fun tb ~prefill ~decode -> Pd.deploy tb ~prefill ~decode ()) in
  let unified =
    run_one (fun tb ~prefill ~decode:_ -> Pd.deploy_unified tb ~nodes:prefill ())
  in
  if split <= unified then
    Alcotest.failf "split %s <= unified %s: where did the KV handoff go?"
      (Sim.Time.to_string split) (Sim.Time.to_string unified);
  (* the tax is the transfer, not a blow-up: bounded factor *)
  if split >= 3 * unified then
    Alcotest.failf "tax unbounded: split %s vs unified %s"
      (Sim.Time.to_string split) (Sim.Time.to_string unified)

(* Decode crash: a request routed at a rebooted decode instance surfaces
   typed Stale (never a hang), the probe marks it dead, and the retry
   re-routes to the surviving instance. *)
let test_pd_decode_crash_reroutes () =
  pd_setup ~prefills:1 ~decodes:2 (fun tb ~prefill ~decode ~csvc ->
      let pool = Pd.deploy tb ~prefill ~decode () in
      let client = Pd.attach pool csvc in
      let first =
        Core.Error.ok_exn
          (Pd.request client ~prompt_len:64 ~kv_len:4096 ~iters:2 ~timeout ())
      in
      let victim = List.nth decode first.Pd.o_decode in
      Core.Controller.fail victim.Tb.ctrl;
      Core.Controller.restart victim.Tb.ctrl;
      (match
         Pd.request client ~prompt_len:64 ~kv_len:4096 ~iters:2 ~timeout ()
       with
      | Error Core.Error.Stale -> ()
      | Error e ->
          Alcotest.failf "expected Stale, got %s" (Core.Error.to_string e)
      | Ok _ -> Alcotest.fail "request succeeded against a rebooted decode");
      let retried =
        Core.Error.ok_exn
          (Pd.request client ~prompt_len:64 ~kv_len:4096 ~iters:2 ~timeout ())
      in
      check_bool "rerouted to the survivor" true
        (retried.Pd.o_decode <> first.Pd.o_decode))

(* Status codec round-trips every typed error. *)
let test_pd_status_codec () =
  List.iter
    (fun e ->
      check_bool (Core.Error.to_string e) true
        (Core.Error.equal e (Pd.error_of_status (Pd.status_of_error e))))
    [
      Core.Error.Invalid_cap; Core.Error.Revoked; Core.Error.Stale;
      Core.Error.Perm_denied; Core.Error.Bounds; Core.Error.Provider_dead;
      Core.Error.Ctrl_unreachable; Core.Error.Quota_exceeded;
      Core.Error.Timeout; Core.Error.Overloaded;
    ]

let () =
  Alcotest.run "fractos_router"
    [
      ( "policies",
        [
          qtest prop_rr_fair;
          qtest prop_least_loaded;
          qtest prop_cache_deterministic;
          Alcotest.test_case "affinity slack" `Quick test_slack_fallback;
          Alcotest.test_case "placement scorer" `Quick test_placement_scorer;
        ] );
      ( "pd",
        [
          Alcotest.test_case "end to end" `Quick test_pd_end_to_end;
          Alcotest.test_case "unified baseline" `Quick test_pd_unified_baseline;
          Alcotest.test_case "disaggregation tax" `Quick test_pd_tax_is_the_copy;
          Alcotest.test_case "decode crash reroutes" `Quick
            test_pd_decode_crash_reroutes;
          Alcotest.test_case "status codec" `Quick test_pd_status_codec;
        ] );
    ]
