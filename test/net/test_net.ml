(* Tests for the fabric model: path latencies, bandwidth serialization,
   contention, and traffic accounting. *)

open Fractos_sim
open Fractos_net

let cfg = Config.default
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_fabric f =
  Engine.run (fun () ->
      let fab = Fabric.create () in
      f fab)

let three_nodes fab =
  let a = Fabric.add_node fab ~name:"a" Node.Host_cpu in
  let b = Fabric.add_node fab ~name:"b" Node.Host_cpu in
  let c = Fabric.add_node fab ~name:"c" Node.Wimpy_cpu in
  (a, b, c)

(* ------------------------------------------------------------------ *)
(* Config                                                             *)
(* ------------------------------------------------------------------ *)

let test_bytes_time () =
  (* 10 Gbps = 1.25 GB/s => 1 byte = 0.8 ns, rounded up to 1. *)
  check_int "1 byte" 1 (Config.bytes_time ~bw_bps:10_000_000_000 1);
  (* 1250 bytes = 1 us exactly at 10 Gbps. *)
  check_int "1250B" 1_000 (Config.bytes_time ~bw_bps:10_000_000_000 1_250);
  check_int "zero" 0 (Config.bytes_time ~bw_bps:10_000_000_000 0);
  (* 4 MiB at 10 Gbps ~ 3.36 ms. *)
  let t = Config.bytes_time ~bw_bps:10_000_000_000 (4 * 1024 * 1024) in
  check_bool "4MiB in range" true (t > Time.ms 3 && t < Time.ms 4)

let test_config_validate () =
  (* Non-positive chunking / windowing knobs used to send the chunker into
     an infinite loop at copy time; they must be rejected up front, both by
     Config.validate and by Fabric.create. *)
  let rejects label cfg =
    match Config.validate cfg with
    | () -> Alcotest.failf "validate accepted %s" label
    | exception Invalid_argument _ -> ()
  in
  Config.validate Config.default;
  rejects "bounce_chunk = 0" { Config.default with bounce_chunk = 0 };
  rejects "bounce_chunk < 0" { Config.default with bounce_chunk = -16384 };
  rejects "copy_window = 0" { Config.default with copy_window = 0 };
  rejects "copy_streams = 0" { Config.default with copy_streams = -1 };
  match
    Engine.run (fun () ->
        Fabric.create ~config:{ Config.default with bounce_chunk = 0 } ())
  with
  | _ -> Alcotest.fail "Fabric.create accepted bounce_chunk = 0"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Node                                                               *)
(* ------------------------------------------------------------------ *)

let test_node_machine_grouping () =
  with_fabric (fun fab ->
      let host = Fabric.add_node fab ~name:"host" Node.Host_cpu in
      let snic =
        Fabric.add_node fab ~attached_to:host ~name:"host-snic" Node.Smart_nic
      in
      let other = Fabric.add_node fab ~name:"other" Node.Host_cpu in
      check_bool "host/snic same machine" true (Node.same_machine host snic);
      check_bool "snic/host same machine" true (Node.same_machine snic host);
      check_bool "self" true (Node.same_machine host host);
      check_bool "cross machine" false (Node.same_machine host other);
      check_bool "snic to other" false (Node.same_machine snic other))

let test_node_attachment_validation () =
  with_fabric (fun fab ->
      let host = Fabric.add_node fab ~name:"h" Node.Host_cpu in
      (match Fabric.add_node fab ~name:"n" Node.Smart_nic with
      | _ -> Alcotest.fail "snic without host accepted"
      | exception Invalid_argument _ -> ());
      match Fabric.add_node fab ~attached_to:host ~name:"x" Node.Host_cpu with
      | _ -> Alcotest.fail "host with attachment accepted"
      | exception Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Fabric latency model                                               *)
(* ------------------------------------------------------------------ *)

let test_base_latencies () =
  with_fabric (fun fab ->
      let host = Fabric.add_node fab ~name:"h" Node.Host_cpu in
      let snic =
        Fabric.add_node fab ~attached_to:host ~name:"s" Node.Smart_nic
      in
      let remote = Fabric.add_node fab ~name:"r" Node.Host_cpu in
      check_int "loopback" cfg.loopback_oneway
        (Fabric.base_latency fab ~src:host ~dst:host);
      check_int "pcie"
        (cfg.loopback_oneway + cfg.pcie_extra)
        (Fabric.base_latency fab ~src:host ~dst:snic);
      check_int "wire" cfg.wire_oneway
        (Fabric.base_latency fab ~src:host ~dst:remote))

let test_transfer_latency_small () =
  (* A small cross-node message takes base + serialization of payload +
     headers. *)
  let elapsed =
    with_fabric (fun fab ->
        let a, b, _ = three_nodes fab in
        let t0 = Engine.now () in
        Fabric.transfer fab ~src:a ~dst:b ~size:1 ();
        Engine.now () - t0)
  in
  let expect =
    cfg.wire_oneway
    + Config.bytes_time ~bw_bps:cfg.net_bandwidth_bps (1 + cfg.header_bytes)
  in
  check_int "1-byte transfer" expect elapsed

let test_transfer_bandwidth_large () =
  (* A 1 MiB transfer is dominated by serialization at ~10 Gbps. *)
  let elapsed =
    with_fabric (fun fab ->
        let a, b, _ = three_nodes fab in
        let t0 = Engine.now () in
        Fabric.transfer fab ~src:a ~dst:b ~size:(1024 * 1024) ();
        Engine.now () - t0)
  in
  let ideal = Config.bytes_time ~bw_bps:cfg.net_bandwidth_bps (1024 * 1024) in
  check_bool "within 2% of line rate" true
    (elapsed >= ideal && elapsed < ideal + (ideal / 50))

let test_tx_contention_serializes () =
  (* Two concurrent sends from the same node share its TX engine: the
     second message's delivery is delayed by a full serialization time. *)
  let d1, d2 =
    with_fabric (fun fab ->
        let a, b, c = three_nodes fab in
        let size = 125_000 (* 100 us at 10 Gbps *) in
        let t1 = ref 0 and t2 = ref 0 in
        Fabric.send fab ~src:a ~dst:b ~size (fun () -> t1 := Engine.now ());
        Fabric.send fab ~src:a ~dst:c ~size (fun () -> t2 := Engine.now ());
        Engine.sleep (Time.ms 10);
        (!t1, !t2))
  in
  let ser =
    Config.bytes_time ~bw_bps:cfg.net_bandwidth_bps (125_000 + cfg.header_bytes)
  in
  check_int "first at ser+wire" (ser + cfg.wire_oneway) d1;
  check_int "second delayed by ser" (2 * ser + cfg.wire_oneway) d2

let test_rx_incast_contention () =
  (* Two senders into one receiver: deliveries serialize at the receiver's
     RX engine even though the senders are distinct. *)
  let d1, d2 =
    with_fabric (fun fab ->
        let a, b, c = three_nodes fab in
        let size = 125_000 in
        let t1 = ref 0 and t2 = ref 0 in
        Fabric.send fab ~src:a ~dst:c ~size (fun () -> t1 := Engine.now ());
        Fabric.send fab ~src:b ~dst:c ~size (fun () -> t2 := Engine.now ());
        Engine.sleep (Time.ms 10);
        (!t1, !t2))
  in
  check_bool "second delivery pushed back" true (d2 - d1 >= 99_000)

let test_send_preserves_order_same_pair () =
  let order =
    with_fabric (fun fab ->
        let a, b, _ = three_nodes fab in
        let log = ref [] in
        for i = 1 to 5 do
          Fabric.send fab ~src:a ~dst:b ~size:100 (fun () ->
              log := i :: !log)
        done;
        Engine.sleep (Time.ms 1);
        List.rev !log)
  in
  Alcotest.(check (list int)) "in-order delivery" [ 1; 2; 3; 4; 5 ] order

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)
(* ------------------------------------------------------------------ *)

let test_stats_census () =
  with_fabric (fun fab ->
      let a, b, _ = three_nodes fab in
      Fabric.transfer fab ~src:a ~dst:b ~cls:Stats.Control ~size:100 ();
      Fabric.transfer fab ~src:a ~dst:b ~cls:Stats.Data ~size:4096 ();
      Fabric.transfer fab ~src:b ~dst:a ~cls:Stats.Control ~size:50 ();
      let c = Stats.census (Fabric.stats fab) in
      check_int "net messages" 3 c.net_messages;
      check_int "net bytes" (100 + 4096 + 50) c.net_bytes;
      check_int "control msgs" 2 c.net_control_messages;
      check_int "data msgs" 1 c.net_data_messages;
      check_int "data bytes" 4096 c.net_data_bytes)

let test_stats_local_excluded () =
  with_fabric (fun fab ->
      let host = Fabric.add_node fab ~name:"h" Node.Host_cpu in
      let snic =
        Fabric.add_node fab ~attached_to:host ~name:"s" Node.Smart_nic
      in
      Fabric.transfer fab ~src:host ~dst:host ~size:10 ();
      Fabric.transfer fab ~src:host ~dst:snic ~size:10 ();
      let c = Stats.census (Fabric.stats fab) in
      check_int "all messages" 2 c.messages;
      check_int "network messages" 0 c.net_messages)

let test_stats_per_link () =
  with_fabric (fun fab ->
      let a, b, c = three_nodes fab in
      Fabric.transfer fab ~src:a ~dst:b ~size:10 ();
      Fabric.transfer fab ~src:a ~dst:b ~size:20 ();
      Fabric.transfer fab ~src:a ~dst:c ~size:30 ();
      let links = Stats.per_link (Fabric.stats fab) in
      Alcotest.(check (list (pair (pair string string) (pair int int))))
        "links"
        [ (("a", "b"), (2, 30)); (("a", "c"), (1, 30)) ]
        links)

let test_stats_size_histogram () =
  with_fabric (fun fab ->
      let a, b, _ = three_nodes fab in
      Fabric.transfer fab ~src:a ~dst:b ~size:1 ();
      Fabric.transfer fab ~src:a ~dst:b ~size:100 ();
      Fabric.transfer fab ~src:a ~dst:b ~size:100 ();
      Fabric.transfer fab ~src:a ~dst:b ~size:5000 ();
      (* intra-machine messages do not count *)
      Fabric.transfer fab ~src:a ~dst:a ~size:100 ();
      let h = Stats.size_histogram (Fabric.stats fab) in
      Alcotest.(check (list (pair int int)))
        "buckets" [ (1, 1); (128, 2); (8192, 1) ] h)

let test_stats_reset () =
  with_fabric (fun fab ->
      let a, b, _ = three_nodes fab in
      Fabric.transfer fab ~src:a ~dst:b ~size:10 ();
      Stats.reset (Fabric.stats fab);
      let c = Stats.census (Fabric.stats fab) in
      check_int "zeroed" 0 c.messages;
      check_int "links cleared" 0 (List.length (Stats.per_link (Fabric.stats fab))))

(* ------------------------------------------------------------------ *)
(* Endpoint                                                           *)
(* ------------------------------------------------------------------ *)

let test_endpoint_roundtrip () =
  let v =
    with_fabric (fun fab ->
        let a, b, _ = three_nodes fab in
        let ep = Endpoint.create ~node:b "b-svc" in
        Engine.spawn (fun () ->
            Endpoint.post fab ~src:a ep ~size:64 "hello");
        Endpoint.recv ep)
  in
  Alcotest.(check string) "delivered" "hello" v

let test_endpoint_pending () =
  with_fabric (fun fab ->
      let a, b, _ = three_nodes fab in
      let ep = Endpoint.create ~node:b "b-svc" in
      Endpoint.post fab ~src:a ep ~size:1 1;
      Endpoint.post fab ~src:a ep ~size:1 2;
      Engine.sleep (Time.ms 1);
      check_int "two pending" 2 (Endpoint.pending ep);
      check_bool "fifo" true (Endpoint.try_recv ep = Some 1))

(* ------------------------------------------------------------------ *)
(* Fault injection                                                    *)
(* ------------------------------------------------------------------ *)

let test_fault_drop () =
  with_fabric (fun fab ->
      let a, b, _ = three_nodes fab in
      Fabric.set_fault_hook fab
        (Some (fun ~src:_ ~dst:_ ~cls:_ ~size:_ -> Fabric.Drop));
      let arrived = ref false in
      Fabric.send fab ~src:a ~dst:b ~size:64 (fun () -> arrived := true);
      Engine.sleep (Time.ms 10);
      check_bool "dropped message never arrives" false !arrived)

let test_fault_delay () =
  let arrival ~fault =
    with_fabric (fun fab ->
        let a, b, _ = three_nodes fab in
        Fabric.set_fault_hook fab
          (Some (fun ~src:_ ~dst:_ ~cls:_ ~size:_ -> fault));
        let at = ref 0 in
        Fabric.send fab ~src:a ~dst:b ~size:64 (fun () -> at := Engine.now ());
        Engine.sleep (Time.ms 10);
        !at)
  in
  let base = arrival ~fault:Fabric.Pass in
  let extra = Time.us 7 in
  check_int "delay adds exactly the extra latency" (base + extra)
    (arrival ~fault:(Fabric.Delay extra))

let test_fault_duplicate_delivers_twice () =
  let n =
    with_fabric (fun fab ->
        let a, b, _ = three_nodes fab in
        Fabric.set_fault_hook fab
          (Some (fun ~src:_ ~dst:_ ~cls:_ ~size:_ -> Fabric.Duplicate));
        let n = ref 0 in
        Fabric.send fab ~src:a ~dst:b ~size:64 (fun () -> incr n);
        Engine.sleep (Time.ms 10);
        !n)
  in
  check_int "raw callback runs twice" 2 n

let test_fault_hook_removable () =
  let arrived =
    with_fabric (fun fab ->
        let a, b, _ = three_nodes fab in
        Fabric.set_fault_hook fab
          (Some (fun ~src:_ ~dst:_ ~cls:_ ~size:_ -> Fabric.Drop));
        Fabric.set_fault_hook fab None;
        let arrived = ref false in
        Fabric.send fab ~src:a ~dst:b ~size:64 (fun () -> arrived := true);
        Engine.sleep (Time.ms 10);
        !arrived)
  in
  check_bool "hook removal restores delivery" true arrived

let test_fault_transfer_duplicate_safe () =
  with_fabric (fun fab ->
      let a, b, _ = three_nodes fab in
      Fabric.set_fault_hook fab
        (Some (fun ~src:_ ~dst:_ ~cls:_ ~size:_ -> Fabric.Duplicate));
      (* must not raise on the second fill of the completion ivar *)
      Fabric.transfer fab ~src:a ~dst:b ~size:256 ();
      Engine.sleep (Time.ms 10))

let test_endpoint_dedups_duplicates () =
  with_fabric (fun fab ->
      let a, b, _ = three_nodes fab in
      let ep = Endpoint.create ~node:b "b-svc" in
      Fabric.set_fault_hook fab
        (Some (fun ~src:_ ~dst:_ ~cls:_ ~size:_ -> Fabric.Duplicate));
      Endpoint.post fab ~src:a ep ~size:64 "once";
      Engine.sleep (Time.ms 10);
      check_int "one copy visible to receiver" 1 (Endpoint.pending ep);
      check_bool "payload intact" true (Endpoint.try_recv ep = Some "once");
      (* distinct messages are not confused with retransmissions *)
      Fabric.set_fault_hook fab None;
      Endpoint.post fab ~src:a ep ~size:64 "two";
      Endpoint.post fab ~src:a ep ~size:64 "three";
      Engine.sleep (Time.ms 10);
      check_int "later messages still flow" 2 (Endpoint.pending ep))

(* ------------------------------------------------------------------ *)
(* Trace                                                              *)
(* ------------------------------------------------------------------ *)

let test_trace_records_sends () =
  with_fabric (fun fab ->
      let a, b, _ = three_nodes fab in
      let rec_ = Trace.recorder () in
      Fabric.set_tracer fab (Some (Trace.record rec_));
      Fabric.transfer fab ~src:a ~dst:b ~cls:Stats.Data ~size:100 ();
      Fabric.transfer fab ~src:a ~dst:a ~size:10 ();
      Fabric.set_tracer fab None;
      Fabric.transfer fab ~src:a ~dst:b ~size:10 ();
      let evs = Trace.events rec_ in
      check_int "two traced" 2 (List.length evs);
      match evs with
      | [ e1; e2 ] ->
        Alcotest.(check string) "src" "a" e1.Trace.ev_src;
        Alcotest.(check string) "dst" "b" e1.Trace.ev_dst;
        check_int "bytes" 100 e1.Trace.ev_bytes;
        check_bool "network" false e1.Trace.ev_local;
        check_bool "loopback flagged local" true e2.Trace.ev_local
      | _ -> Alcotest.fail "unexpected events")

let test_trace_bounded () =
  with_fabric (fun fab ->
      let a, b, _ = three_nodes fab in
      let rec_ = Trace.recorder ~limit:5 () in
      Fabric.set_tracer fab (Some (Trace.record rec_));
      for _ = 1 to 12 do
        Fabric.transfer fab ~src:a ~dst:b ~size:1 ()
      done;
      check_int "kept at most limit" 5 (Trace.count rec_);
      check_int "dropped the rest" 7 (Trace.dropped rec_))

let test_trace_arrivals () =
  with_fabric (fun fab ->
      let a, b, _ = three_nodes fab in
      let rec_ = Trace.recorder ~arrivals:true () in
      Fabric.set_tracer fab (Some (Trace.record rec_));
      Fabric.transfer fab ~src:a ~dst:b ~cls:Stats.Data ~size:100 ();
      Fabric.set_tracer fab None;
      match Trace.events rec_ with
      | [ dep; arr ] ->
        check_bool "depart first" true (dep.Trace.ev_kind = Trace.Depart);
        check_bool "arrive second" true (arr.Trace.ev_kind = Trace.Arrive);
        check_bool "arrival is later" true (arr.Trace.ev_time > dep.Trace.ev_time);
        Alcotest.(check string) "same src" dep.Trace.ev_src arr.Trace.ev_src;
        check_int "same bytes" dep.Trace.ev_bytes arr.Trace.ev_bytes;
        check_int "no drops" 0 (Trace.dropped rec_)
      | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs))

(* ------------------------------------------------------------------ *)
(* Utilization                                                        *)
(* ------------------------------------------------------------------ *)

let test_utilization_accounts_busy_links () =
  with_fabric (fun fab ->
      let a, b, _ = three_nodes fab in
      (* saturate a's TX for ~half the window *)
      Fabric.transfer fab ~src:a ~dst:b ~cls:Stats.Data
        ~size:(625 * 1000) () (* 500 us at 10 Gbps *);
      Engine.sleep (Time.us 500);
      let us = Fabric.utilization fab ~elapsed:(Engine.now ()) in
      let ua = List.find (fun u -> u.Fabric.u_node = "a") us in
      let uc = List.find (fun u -> u.Fabric.u_node = "c") us in
      check_bool "a.tx near 50%" true (ua.Fabric.u_tx > 0.4 && ua.Fabric.u_tx < 0.6);
      check_bool "idle node at 0" true (uc.Fabric.u_tx = 0.))

(* ------------------------------------------------------------------ *)
(* Cost model                                                         *)
(* ------------------------------------------------------------------ *)

let test_cost_scaling () =
  check_int "host msg" cfg.c_msg (Cost.one cfg Node.Host_cpu Cost.Msg);
  check_int "snic msg"
    (int_of_float (Float.round (float_of_int cfg.c_msg *. cfg.snic_m_msg)))
    (Cost.one cfg Node.Smart_nic Cost.Msg);
  check_int "wimpy lookup"
    (int_of_float
       (Float.round (float_of_int cfg.c_lookup *. cfg.wimpy_factor)))
    (Cost.one cfg Node.Wimpy_cpu Cost.Lookup)

let test_cost_bag () =
  let total =
    Cost.v cfg Node.Host_cpu [ (Cost.Msg, 2); (Cost.Lookup, 3) ]
  in
  check_int "bag sum" ((2 * cfg.c_msg) + (3 * cfg.c_lookup)) total

let test_cost_snic_lookup_dominates () =
  (* The paper's sNIC pain point: lookups slow down far more than plain
     message handling. *)
  let m_msg =
    float_of_int (Cost.one cfg Node.Smart_nic Cost.Msg)
    /. float_of_int (Cost.one cfg Node.Host_cpu Cost.Msg)
  in
  let m_lookup =
    float_of_int (Cost.one cfg Node.Smart_nic Cost.Lookup)
    /. float_of_int (Cost.one cfg Node.Host_cpu Cost.Lookup)
  in
  check_bool "lookup multiplier larger" true (m_lookup > m_msg)

(* Property: transfer time is monotone in message size. *)
let prop_transfer_monotone =
  QCheck.Test.make ~name:"transfer time monotone in size" ~count:30
    QCheck.(pair (int_range 1 100_000) (int_range 1 100_000))
    (fun (s1, s2) ->
      let time s =
        with_fabric (fun fab ->
            let a, b, _ = three_nodes fab in
            let t0 = Engine.now () in
            Fabric.transfer fab ~src:a ~dst:b ~size:s ();
            Engine.now () - t0)
      in
      let small = min s1 s2 and big = max s1 s2 in
      time small <= time big)

(* ------------------------------------------------------------------ *)
(* Sharded engine                                                     *)
(* ------------------------------------------------------------------ *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Paired client/server hosts with every request crossing shards and every
   RX engine fed by a single source: the one traffic shape where the
   sharded fabric's arrival-order RX booking coincides with the serial
   engine's send-order booking, so the delivery schedule and traffic
   census must match the serial engine bit for bit. *)
let sharded_traffic ~pairs ~rounds run =
  let logs = Array.make pairs [] in
  let fab_out = ref None in
  run (fun () ->
      let fab = Fabric.create () in
      fab_out := Some fab;
      let clients =
        Array.init pairs (fun i ->
            Fabric.add_node fab ~name:(Printf.sprintf "c%d" i) Node.Host_cpu)
      in
      let servers =
        Array.init pairs (fun i ->
            Fabric.add_node fab ~name:(Printf.sprintf "s%d" i) Node.Host_cpu)
      in
      let shards = Engine.shard_count () in
      let shard_tbl = Hashtbl.create 16 in
      Array.iteri
        (fun i n -> Hashtbl.replace shard_tbl n.Node.id (i mod shards))
        clients;
      Array.iteri
        (fun i n -> Hashtbl.replace shard_tbl n.Node.id ((i + 1) mod shards))
        servers;
      Fabric.set_shard_map fab
        (Some (fun n -> Hashtbl.find shard_tbl n.Node.id));
      for i = 0 to pairs - 1 do
        Engine.spawn_on
          ~name:(Printf.sprintf "client-%d" i)
          ~shard:(i mod shards)
          (fun () ->
            (* Fixed start instant, past the remote-spawn lookahead hop, so
               serial and sharded runs issue the same send times. *)
            let t0 = Time.ms 1 in
            Engine.sleep (t0 - Engine.now ());
            for k = 1 to rounds do
              let size = 64 + (641 * ((i * rounds) + k) mod 4093) in
              let cls = if k mod 3 = 0 then Stats.Data else Stats.Control in
              Fabric.send fab ~src:clients.(i) ~dst:servers.(i) ~cls ~size
                (fun () ->
                  (* Runs on the server's shard; slot [i] has that single
                     writer, so per-slot accumulation is race-free. *)
                  logs.(i) <- (Engine.now (), i, k) :: logs.(i));
              Engine.sleep (Time.us (7 + ((i + k) mod 11)))
            done)
      done);
  let entries = List.sort compare (List.concat (Array.to_list logs)) in
  let census =
    match !fab_out with
    | Some fab -> Stats.census (Fabric.stats fab)
    | None -> assert false
  in
  (entries, census)

let test_sharded_fabric_matches_serial () =
  let pairs = 4 and rounds = 6 in
  let la = Config.min_remote_latency Config.default in
  let serial = sharded_traffic ~pairs ~rounds (fun f -> Engine.run f) in
  let entries, census = serial in
  check_int "all deliveries" (pairs * rounds) (List.length entries);
  check_bool "traffic counted" true (census.Stats.net_messages > 0);
  List.iter
    (fun domains ->
      let sharded =
        sharded_traffic ~pairs ~rounds (fun f ->
            Engine.run_sharded ~domains ~shards:pairs ~lookahead:la f)
      in
      check_bool
        (Printf.sprintf "domains=%d identical to serial" domains)
        true
        (serial = sharded))
    [ 1; 2 ]

let test_sharded_split_machine_rejected () =
  let la = Config.min_remote_latency Config.default in
  Engine.run_sharded ~shards:2 ~lookahead:la (fun () ->
      let fab = Fabric.create () in
      let h = Fabric.add_node fab ~name:"h" Node.Host_cpu in
      let snic =
        Fabric.add_node fab ~attached_to:h ~name:"h-snic" Node.Smart_nic
      in
      Fabric.set_shard_map fab
        (Some (fun n -> if n.Node.id = snic.Node.id then 1 else 0));
      match Fabric.send fab ~src:h ~dst:snic ~size:64 (fun () -> ()) with
      | () -> Alcotest.fail "machine-splitting shard map was accepted"
      | exception Invalid_argument msg ->
        check_bool "names the invariant" true
          (contains ~sub:"splits machine" msg))

let test_sharded_endpoint_dedup () =
  (* A Duplicate fault on a cross-shard message must still be discarded by
     the destination endpoint's PSN window, even though the sequence number
     was minted on the source shard. *)
  let la = Config.min_remote_latency Config.default in
  let got = ref [] in
  let ep_out = ref None in
  Engine.run_sharded ~shards:2 ~lookahead:la (fun () ->
      let fab = Fabric.create () in
      let a = Fabric.add_node fab ~name:"a" Node.Host_cpu in
      let b = Fabric.add_node fab ~name:"b" Node.Host_cpu in
      Fabric.set_shard_map fab
        (Some (fun n -> if n.Node.id = b.Node.id then 1 else 0));
      Fabric.set_fault_hook fab
        (Some
           (fun ~src:_ ~dst:_ ~cls:_ ~size ->
             if size = 777 then Fabric.Duplicate else Fabric.Pass));
      let ep = Endpoint.create ~node:b "srv" in
      ep_out := Some ep;
      Engine.spawn_on ~name:"server" ~shard:1 (fun () ->
          let x = Endpoint.recv ep in
          let y = Endpoint.recv ep in
          got := [ x; y ]);
      Engine.spawn_on ~name:"client" ~shard:0 (fun () ->
          Engine.sleep (Time.ms 1);
          Endpoint.post fab ~src:a ep ~size:777 1;
          Endpoint.post fab ~src:a ep ~size:100 2));
  Alcotest.(check (list int)) "dup discarded, order kept" [ 1; 2 ] !got;
  match !ep_out with
  | Some ep -> check_int "nothing left queued" 0 (Endpoint.pending ep)
  | None -> assert false

let qtest t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "fractos_net"
    [
      ( "config",
        [
          Alcotest.test_case "bytes_time" `Quick test_bytes_time;
          Alcotest.test_case "validate rejects bad knobs" `Quick
            test_config_validate;
        ] );
      ( "node",
        [
          Alcotest.test_case "machine grouping" `Quick
            test_node_machine_grouping;
          Alcotest.test_case "attachment validation" `Quick
            test_node_attachment_validation;
        ] );
      ( "fabric",
        [
          Alcotest.test_case "base latencies" `Quick test_base_latencies;
          Alcotest.test_case "small transfer" `Quick
            test_transfer_latency_small;
          Alcotest.test_case "large transfer bandwidth" `Quick
            test_transfer_bandwidth_large;
          Alcotest.test_case "tx contention" `Quick
            test_tx_contention_serializes;
          Alcotest.test_case "rx incast" `Quick test_rx_incast_contention;
          Alcotest.test_case "in-order same pair" `Quick
            test_send_preserves_order_same_pair;
          qtest prop_transfer_monotone;
        ] );
      ( "stats",
        [
          Alcotest.test_case "census" `Quick test_stats_census;
          Alcotest.test_case "local excluded" `Quick test_stats_local_excluded;
          Alcotest.test_case "per link" `Quick test_stats_per_link;
          Alcotest.test_case "size histogram" `Quick test_stats_size_histogram;
          Alcotest.test_case "reset" `Quick test_stats_reset;
        ] );
      ( "endpoint",
        [
          Alcotest.test_case "roundtrip" `Quick test_endpoint_roundtrip;
          Alcotest.test_case "pending" `Quick test_endpoint_pending;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "matches serial engine" `Quick
            test_sharded_fabric_matches_serial;
          Alcotest.test_case "split machine rejected" `Quick
            test_sharded_split_machine_rejected;
          Alcotest.test_case "cross-shard endpoint dedup" `Quick
            test_sharded_endpoint_dedup;
        ] );
      ( "fault",
        [
          Alcotest.test_case "drop" `Quick test_fault_drop;
          Alcotest.test_case "delay" `Quick test_fault_delay;
          Alcotest.test_case "duplicate" `Quick
            test_fault_duplicate_delivers_twice;
          Alcotest.test_case "hook removable" `Quick test_fault_hook_removable;
          Alcotest.test_case "transfer duplicate-safe" `Quick
            test_fault_transfer_duplicate_safe;
          Alcotest.test_case "endpoint dedup" `Quick
            test_endpoint_dedups_duplicates;
        ] );
      ( "trace",
        [
          Alcotest.test_case "records sends" `Quick test_trace_records_sends;
          Alcotest.test_case "bounded" `Quick test_trace_bounded;
          Alcotest.test_case "arrivals opt-in" `Quick test_trace_arrivals;
        ] );
      ( "utilization",
        [
          Alcotest.test_case "busy links" `Quick
            test_utilization_accounts_busy_links;
        ] );
      ( "cost",
        [
          Alcotest.test_case "scaling" `Quick test_cost_scaling;
          Alcotest.test_case "bag" `Quick test_cost_bag;
          Alcotest.test_case "snic lookup dominates" `Quick
            test_cost_snic_lookup_dominates;
        ] );
    ]
