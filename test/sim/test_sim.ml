(* Tests for the discrete-event simulation engine and its primitives. *)

open Fractos_sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Heap                                                               *)
(* ------------------------------------------------------------------ *)

let test_heap_order () =
  let h = Heap.create () in
  Heap.push h ~time:5 ~seq:1 "c";
  Heap.push h ~time:1 ~seq:2 "a";
  Heap.push h ~time:3 ~seq:3 "b";
  let pop () =
    match Heap.pop h with Some (_, _, v) -> v | None -> Alcotest.fail "empty"
  in
  let p1 = pop () in
  let p2 = pop () in
  let p3 = pop () in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] [ p1; p2; p3 ];
  check_bool "empty at end" true (Heap.is_empty h)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  for i = 0 to 9 do
    Heap.push h ~time:7 ~seq:i i
  done;
  let order = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (_, _, v) ->
      order := v :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int))
    "FIFO among equal times"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !order)

let test_heap_growth () =
  let h = Heap.create () in
  let n = 10_000 in
  for i = n downto 1 do
    Heap.push h ~time:i ~seq:i i
  done;
  check_int "length" n (Heap.length h);
  let last = ref 0 in
  let rec drain () =
    match Heap.pop h with
    | Some (t, _, _) ->
      if t < !last then Alcotest.fail "heap order violated";
      last := t;
      drain ()
    | None -> ()
  in
  drain ()

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap pops sorted" ~count:200
    QCheck.(list (pair (int_bound 1000) (int_bound 1000)))
    (fun entries ->
      let h = Heap.create () in
      List.iteri (fun i (t, v) -> Heap.push h ~time:t ~seq:i v) entries;
      let rec drain acc =
        match Heap.pop h with
        | Some (t, _, _) -> drain (t :: acc)
        | None -> List.rev acc
      in
      let times = drain [] in
      List.sort compare times = times)

(* ------------------------------------------------------------------ *)
(* Prng                                                               *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.int64 a) (Prng.int64 b)
  done

let test_prng_seeds_differ () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  check_bool "streams differ" false (Prng.int64 a = Prng.int64 b)

let test_prng_bounds () =
  let g = Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Prng.int g 13 in
    if v < 0 || v >= 13 then Alcotest.fail "out of bounds"
  done;
  for _ = 1 to 1000 do
    let f = Prng.float g 2.5 in
    if f < 0. || f >= 2.5 then Alcotest.fail "float out of bounds"
  done

let test_prng_split_independent () =
  let g = Prng.create ~seed:3 in
  let a = Prng.split g in
  let first_a = Prng.int64 a in
  (* Drawing more from g must not perturb a's already-derived stream. *)
  let g2 = Prng.create ~seed:3 in
  let a2 = Prng.split g2 in
  let _ = Prng.int64 g2 in
  Alcotest.(check int64) "split stream stable" first_a (Prng.int64 a2 |> fun _ ->
      let a3 = Prng.create ~seed:0 in
      ignore a3;
      first_a)

let test_prng_fill_bytes () =
  let g = Prng.create ~seed:9 in
  let b = Bytes.create 256 in
  Prng.fill_bytes g b;
  let g' = Prng.create ~seed:9 in
  let b' = Bytes.create 256 in
  Prng.fill_bytes g' b';
  check_bool "deterministic bytes" true (Bytes.equal b b')

(* ------------------------------------------------------------------ *)
(* Time                                                               *)
(* ------------------------------------------------------------------ *)

let test_time_units () =
  check_int "us" 1_000 (Time.us 1);
  check_int "ms" 1_000_000 (Time.ms 1);
  check_int "s" 1_000_000_000 (Time.s 1);
  check_int "of_us_f rounds" 1_500 (Time.of_us_f 1.5);
  Alcotest.(check (float 1e-9)) "to_us_f" 2.5 (Time.to_us_f 2_500)

let test_time_pp () =
  Alcotest.(check string) "ns" "999ns" (Time.to_string 999);
  Alcotest.(check string) "us" "1.50us" (Time.to_string 1_500);
  Alcotest.(check string) "ms" "2.00ms" (Time.to_string 2_000_000)

(* ------------------------------------------------------------------ *)
(* Engine                                                             *)
(* ------------------------------------------------------------------ *)

let test_engine_returns () =
  check_int "result" 41 (Engine.run (fun () -> 41))

let test_engine_clock_starts_at_zero () =
  check_int "t0" 0 (Engine.run (fun () -> Engine.now ()))

let test_engine_sleep_advances () =
  let t =
    Engine.run (fun () ->
        Engine.sleep (Time.us 5);
        Engine.sleep (Time.us 7);
        Engine.now ())
  in
  check_int "12us" (Time.us 12) t

let test_engine_negative_sleep () =
  let t =
    Engine.run (fun () ->
        Engine.sleep (-5);
        Engine.now ())
  in
  check_int "clamped" 0 t

let test_engine_sleep_until () =
  let t =
    Engine.run (fun () ->
        Engine.sleep_until 500;
        Engine.sleep_until 100;
        (* in the past: no-op *)
        Engine.now ())
  in
  check_int "500" 500 t

let test_engine_spawn_interleave () =
  let log = ref [] in
  let push x = log := x :: !log in
  ignore
    (Engine.run (fun () ->
         Engine.spawn (fun () ->
             Engine.sleep 10;
             push "b10");
         Engine.spawn (fun () ->
             Engine.sleep 5;
             push "a5");
         Engine.sleep 20;
         push "main20"));
  Alcotest.(check (list string))
    "time order" [ "a5"; "b10"; "main20" ] (List.rev !log)

let test_engine_same_instant_fifo () =
  let log = ref [] in
  ignore
    (Engine.run (fun () ->
         for i = 0 to 4 do
           Engine.spawn (fun () -> log := i :: !log)
         done;
         Engine.sleep 1));
  Alcotest.(check (list int)) "spawn order" [ 0; 1; 2; 3; 4 ] (List.rev !log)

let test_engine_exception_propagates () =
  let failing () =
    Engine.run (fun () ->
        Engine.spawn (fun () -> failwith "boom");
        Engine.sleep 100;
        ())
  in
  Alcotest.check_raises "fiber failure aborts run" (Failure "boom") failing

let test_engine_deadlock_detected () =
  let deadlock () =
    ignore
      (Engine.run (fun () ->
           let iv : unit Ivar.t = Ivar.create () in
           Ivar.await iv))
  in
  match deadlock () with
  | () -> Alcotest.fail "expected Deadlock"
  | exception Engine.Deadlock _ -> ()

(* Regression: when an abandoned background fiber and the root fiber both
   fail at the same instant (background first in FIFO order), the root
   fiber's error must be the one that surfaces. *)
let test_engine_root_error_wins_same_instant () =
  let failing () =
    ignore
      (Engine.run (fun () ->
           Engine.spawn (fun () ->
               Engine.sleep 10;
               failwith "abandoned server");
           Engine.yield ();
           Engine.sleep 10;
           failwith "root"))
  in
  Alcotest.check_raises "root error surfaces" (Failure "root") failing

(* Regression: an exception from a raw scheduled event queued ahead of the
   root fiber at the same instant must not preempt the root's own error. *)
let test_engine_raw_event_error_does_not_mask_root () =
  let failing () =
    ignore
      (Engine.run (fun () ->
           Engine.schedule 10 (fun () -> failwith "raw");
           Engine.sleep 10;
           failwith "root"))
  in
  Alcotest.check_raises "root error outranks raw event" (Failure "root")
    failing

(* Regression: a recorded fiber failure outranks Deadlock when the queue
   then drains with the root fiber still blocked. *)
let test_engine_failure_preferred_over_deadlock () =
  let failing () =
    ignore
      (Engine.run (fun () ->
           Engine.spawn (fun () ->
               Engine.sleep 5;
               failwith "background");
           let iv : unit Ivar.t = Ivar.create () in
           Ivar.await iv))
  in
  Alcotest.check_raises "background failure, not Deadlock"
    (Failure "background") failing

(* After a failure, events scheduled for a later instant never run. *)
let test_engine_stops_after_failure_instant () =
  let late = ref false in
  (try
     ignore
       (Engine.run (fun () ->
            Engine.schedule 20 (fun () -> late := true);
            Engine.sleep 10;
            failwith "stop"))
   with Failure _ -> ());
  check_bool "later events not run" false !late

let test_engine_schedule () =
  let fired = ref (-1) in
  ignore
    (Engine.run (fun () ->
         Engine.schedule 300 (fun () -> fired := Engine.now ());
         Engine.sleep 1000));
  check_int "fired at 300" 300 !fired

let test_engine_no_nesting () =
  let nest () = Engine.run (fun () -> Engine.run (fun () -> ())) in
  match nest () with
  | () -> Alcotest.fail "expected failure"
  | exception Failure _ -> ()

let test_engine_outside_raises () =
  match Engine.now () with
  | _ -> Alcotest.fail "expected failure"
  | exception _ -> ()

(* Determinism: the same program with PRNG-driven sleeps produces the same
   trace twice. *)
let test_engine_determinism () =
  let run_once () =
    let trace = ref [] in
    ignore
      (Engine.run (fun () ->
           let g = Prng.create ~seed:11 in
           for i = 0 to 20 do
             let d = Prng.int g 100 in
             Engine.spawn (fun () ->
                 Engine.sleep d;
                 trace := (i, Engine.now ()) :: !trace)
           done;
           Engine.sleep 1000));
    List.rev !trace
  in
  check_bool "identical traces" true (run_once () = run_once ())

(* ------------------------------------------------------------------ *)
(* Ivar                                                               *)
(* ------------------------------------------------------------------ *)

let test_ivar_fill_then_await () =
  let v =
    Engine.run (fun () ->
        let iv = Ivar.create () in
        Ivar.fill iv 7;
        Ivar.await iv)
  in
  check_int "immediate" 7 v

let test_ivar_await_then_fill () =
  let v =
    Engine.run (fun () ->
        let iv = Ivar.create () in
        Engine.spawn (fun () ->
            Engine.sleep 50;
            Ivar.fill iv 9);
        Ivar.await iv)
  in
  check_int "delayed" 9 v

let test_ivar_multiple_waiters () =
  let v =
    Engine.run (fun () ->
        let iv = Ivar.create () in
        let acc = ref 0 in
        for _ = 1 to 5 do
          Engine.spawn (fun () -> acc := !acc + Ivar.await iv)
        done;
        Engine.sleep 10;
        Ivar.fill iv 3;
        Engine.sleep 10;
        !acc)
  in
  check_int "all woken" 15 v

let test_ivar_double_fill_rejected () =
  ignore
    (Engine.run (fun () ->
         let iv = Ivar.create () in
         Ivar.fill iv 1;
         check_bool "try_fill fails" false (Ivar.try_fill iv 2);
         (match Ivar.fill iv 2 with
         | () -> Alcotest.fail "expected Invalid_argument"
         | exception Invalid_argument _ -> ());
         check_int "value preserved" 1 (Ivar.await iv)))

let test_ivar_exn () =
  let exception Custom in
  ignore
    (Engine.run (fun () ->
         let iv : int Ivar.t = Ivar.create () in
         Engine.spawn (fun () ->
             Engine.sleep 5;
             Ivar.fill_exn iv Custom);
         (match Ivar.await iv with
         | _ -> Alcotest.fail "expected Custom"
         | exception Custom -> ());
         check_bool "filled" true (Ivar.is_filled iv);
         check_bool "peek none" true (Ivar.peek iv = None)))

let test_ivar_timeout_expires () =
  let v =
    Engine.run (fun () ->
        let iv : int Ivar.t = Ivar.create () in
        Engine.spawn (fun () ->
            Engine.sleep 500;
            Ivar.fill iv 7);
        let first = Ivar.await_timeout iv ~timeout:100 in
        check_int "gave up at deadline" 100 (Engine.now ());
        Engine.sleep 1000;
        (first, Ivar.peek iv))
  in
  check_bool "timed out" true (fst v = None);
  check_bool "late fill still lands" true (snd v = Some 7)

let test_ivar_timeout_wins () =
  let v =
    Engine.run (fun () ->
        let iv = Ivar.create () in
        Engine.spawn (fun () ->
            Engine.sleep 50;
            Ivar.fill iv 9);
        Ivar.await_timeout iv ~timeout:1000)
  in
  check_bool "value before deadline" true (v = Some 9)

let test_ivar_await_resumes_at_fill_time () =
  let t =
    Engine.run (fun () ->
        let iv = Ivar.create () in
        Engine.spawn (fun () ->
            Engine.sleep 123;
            Ivar.fill iv ());
        Ivar.await iv;
        Engine.now ())
  in
  check_int "woken at 123" 123 t

(* ------------------------------------------------------------------ *)
(* Channel                                                            *)
(* ------------------------------------------------------------------ *)

let test_channel_fifo () =
  let out =
    Engine.run (fun () ->
        let ch = Channel.create () in
        Channel.send ch 1;
        Channel.send ch 2;
        Channel.send ch 3;
        let a = Channel.recv ch in
        let b = Channel.recv ch in
        let c = Channel.recv ch in
        [ a; b; c ])
  in
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] out

let test_channel_blocking_recv () =
  let v =
    Engine.run (fun () ->
        let ch = Channel.create () in
        Engine.spawn (fun () ->
            Engine.sleep 40;
            Channel.send ch 99);
        let v = Channel.recv ch in
        check_int "woken at send time" 40 (Engine.now ());
        v)
  in
  check_int "value" 99 v

let test_channel_multiple_receivers_fifo () =
  let order =
    Engine.run (fun () ->
        let ch = Channel.create () in
        let log = ref [] in
        for i = 0 to 2 do
          Engine.spawn (fun () ->
              let v = Channel.recv ch in
              log := (i, v) :: !log)
        done;
        Engine.sleep 10;
        Channel.send ch "x";
        Channel.send ch "y";
        Channel.send ch "z";
        Engine.sleep 10;
        List.rev !log)
  in
  Alcotest.(check (list (pair int string)))
    "receivers served in blocking order"
    [ (0, "x"); (1, "y"); (2, "z") ]
    order

let test_channel_try_recv () =
  ignore
    (Engine.run (fun () ->
         let ch = Channel.create () in
         check_bool "empty" true (Channel.try_recv ch = None);
         Channel.send ch 5;
         check_bool "some" true (Channel.try_recv ch = Some 5);
         check_int "length" 0 (Channel.length ch)))

(* ------------------------------------------------------------------ *)
(* Resource                                                           *)
(* ------------------------------------------------------------------ *)

let test_resource_serializes () =
  (* Two back-to-back uses of a 1-server resource must not overlap. *)
  let finish_times =
    Engine.run (fun () ->
        let r = Resource.create () in
        let times = ref [] in
        for _ = 1 to 3 do
          Engine.spawn (fun () ->
              Resource.use r ~duration:100;
              times := Engine.now () :: !times)
        done;
        Engine.sleep 1000;
        List.rev !times)
  in
  Alcotest.(check (list int)) "serial service" [ 100; 200; 300 ] finish_times

let test_resource_parallel_servers () =
  let finish_times =
    Engine.run (fun () ->
        let r = Resource.create ~servers:2 () in
        let times = ref [] in
        for _ = 1 to 4 do
          Engine.spawn (fun () ->
              Resource.use r ~duration:100;
              times := Engine.now () :: !times)
        done;
        Engine.sleep 1000;
        List.rev !times)
  in
  Alcotest.(check (list int))
    "two at a time" [ 100; 100; 200; 200 ] finish_times

let test_resource_idle_gap () =
  (* After the resource goes idle, a new use starts immediately. *)
  let t =
    Engine.run (fun () ->
        let r = Resource.create () in
        Resource.use r ~duration:10;
        Engine.sleep 100;
        let start, finish = Resource.reserve r ~duration:5 in
        check_int "starts now" 110 start;
        finish)
  in
  check_int "finish" 115 t

let test_resource_busy_accounting () =
  ignore
    (Engine.run (fun () ->
         let r = Resource.create () in
         Resource.use r ~duration:30;
         Resource.use r ~duration:20;
         check_int "booked" 50 (Resource.busy_time r)))

(* ------------------------------------------------------------------ *)
(* Semaphore                                                          *)
(* ------------------------------------------------------------------ *)

let test_semaphore_limits_concurrency () =
  let max_inflight =
    Engine.run (fun () ->
        let s = Semaphore.create 2 in
        let inflight = ref 0 and peak = ref 0 in
        for _ = 1 to 6 do
          Engine.spawn (fun () ->
              Semaphore.with_permit s (fun () ->
                  incr inflight;
                  if !inflight > !peak then peak := !inflight;
                  Engine.sleep 10;
                  decr inflight))
        done;
        Engine.sleep 1000;
        !peak)
  in
  check_int "peak concurrency" 2 max_inflight

let test_semaphore_fifo () =
  let order =
    Engine.run (fun () ->
        let s = Semaphore.create 0 in
        let log = ref [] in
        for i = 0 to 3 do
          Engine.spawn (fun () ->
              Semaphore.acquire s;
              log := i :: !log)
        done;
        Engine.sleep 1;
        for _ = 0 to 3 do
          Semaphore.release s
        done;
        Engine.sleep 1;
        List.rev !log)
  in
  Alcotest.(check (list int)) "fifo wakeup" [ 0; 1; 2; 3 ] order

let test_semaphore_try_acquire () =
  ignore
    (Engine.run (fun () ->
         let s = Semaphore.create 1 in
         check_bool "first" true (Semaphore.try_acquire s);
         check_bool "second" false (Semaphore.try_acquire s);
         Semaphore.release s;
         check_int "available" 1 (Semaphore.available s)))

let test_semaphore_release_while_waiting () =
  ignore
    (Engine.run (fun () ->
         let s = Semaphore.create 0 in
         Engine.spawn (fun () -> Semaphore.acquire s);
         Engine.sleep 1;
         check_int "one waiting" 1 (Semaphore.waiting s);
         Semaphore.release s;
         Engine.sleep 1;
         check_int "none waiting" 0 (Semaphore.waiting s);
         check_int "no spare permit" 0 (Semaphore.available s)))

(* ------------------------------------------------------------------ *)
(* Coverage sweep: smaller API corners                                 *)
(* ------------------------------------------------------------------ *)

let test_heap_peek_and_clear () =
  let h = Heap.create () in
  check_bool "peek empty" true (Heap.peek_time h = None);
  Heap.push h ~time:9 ~seq:0 ();
  Heap.push h ~time:3 ~seq:1 ();
  check_bool "peek min" true (Heap.peek_time h = Some 3);
  Heap.clear h;
  check_bool "cleared" true (Heap.is_empty h && Heap.pop h = None)

let test_time_seconds_pp () =
  Alcotest.(check string) "s" "1.500s" (Time.to_string (Time.ms 1500));
  Alcotest.(check string) "negative ns" "-5ns" (Time.to_string (-5))

let test_prng_exponential_mean () =
  let g = Prng.create ~seed:4 in
  let n = 20_000 in
  let total = ref 0. in
  for _ = 1 to n do
    total := !total +. Prng.exponential g ~mean:100.
  done;
  let mean = !total /. float_of_int n in
  check_bool
    (Printf.sprintf "empirical mean %.1f near 100" mean)
    true
    (mean > 95. && mean < 105.)

let test_channel_waiters_count () =
  ignore
    (Engine.run (fun () ->
         let ch : int Channel.t = Channel.create () in
         for _ = 1 to 3 do
           Engine.spawn (fun () -> ignore (Channel.recv ch))
         done;
         Engine.sleep 1;
         check_int "three blocked" 3 (Channel.waiters ch);
         Channel.send ch 1;
         Engine.sleep 1;
         check_int "one released" 2 (Channel.waiters ch)))

let test_resource_busy_until () =
  ignore
    (Engine.run (fun () ->
         let r = Resource.create () in
         check_int "idle now" 0 (Resource.busy_until r);
         let _, fin = Resource.reserve r ~duration:100 in
         check_int "busy until booking ends" fin (Resource.busy_until r)))

let test_engine_fiber_count () =
  ignore
    (Engine.run (fun () ->
         let before = Engine.fiber_count () in
         for _ = 1 to 4 do
           Engine.spawn (fun () -> ())
         done;
         Engine.sleep 1;
         check_int "spawned fibers counted" (before + 4) (Engine.fiber_count ())))

let test_ivar_try_fill_and_peek () =
  let iv = Ivar.create () in
  check_bool "try_fill fresh" true (Ivar.try_fill iv 5);
  check_bool "peek" true (Ivar.peek iv = Some 5);
  check_bool "second try_fill" false (Ivar.try_fill iv 6)

(* ------------------------------------------------------------------ *)
(* Waitgroup                                                          *)
(* ------------------------------------------------------------------ *)

let test_waitgroup_waits_for_all () =
  let t =
    Engine.run (fun () ->
        let wg = Waitgroup.create () in
        for i = 1 to 5 do
          Waitgroup.spawn wg (fun () -> Engine.sleep (Time.us (10 * i)))
        done;
        Waitgroup.wait wg;
        Engine.now ())
  in
  check_int "woke at slowest task" (Time.us 50) t

let test_waitgroup_immediate_when_empty () =
  ignore
    (Engine.run (fun () ->
         let wg = Waitgroup.create () in
         Waitgroup.wait wg;
         check_int "t=0" 0 (Engine.now ())))

let test_waitgroup_multiple_waiters () =
  let n =
    Engine.run (fun () ->
        let wg = Waitgroup.create () in
        Waitgroup.spawn wg (fun () -> Engine.sleep 100);
        let woken = ref 0 in
        for _ = 1 to 3 do
          Engine.spawn (fun () ->
              Waitgroup.wait wg;
              incr woken)
        done;
        Engine.sleep 200;
        !woken)
  in
  check_int "all released" 3 n

let test_waitgroup_misuse () =
  ignore
    (Engine.run (fun () ->
         let wg = Waitgroup.create () in
         (match Waitgroup.done_ wg with
         | () -> Alcotest.fail "done below zero accepted"
         | exception Invalid_argument _ -> ());
         Waitgroup.add wg 1;
         Waitgroup.done_ wg;
         Waitgroup.wait wg;
         match Waitgroup.add wg 1 with
         | () -> Alcotest.fail "reuse after drain accepted"
         | exception Invalid_argument _ -> ()))

(* ------------------------------------------------------------------ *)
(* Barrier                                                            *)
(* ------------------------------------------------------------------ *)

let test_barrier_releases_together () =
  let times =
    Engine.run (fun () ->
        let b = Barrier.create 3 in
        let log = ref [] in
        List.iter
          (fun d ->
            Engine.spawn (fun () ->
                Engine.sleep d;
                let _gen = Barrier.await b in
                log := Engine.now () :: !log))
          [ 10; 50; 30 ];
        Engine.sleep 100;
        !log)
  in
  Alcotest.(check (list int)) "all released at the last arrival"
    [ 50; 50; 50 ] times

let test_barrier_cycles () =
  let gens =
    Engine.run (fun () ->
        let b = Barrier.create 2 in
        let gens = ref [] in
        for _ = 1 to 2 do
          Engine.spawn (fun () ->
              for _ = 1 to 3 do
                let g = Barrier.await b in
                gens := g :: !gens;
                Engine.yield ()
              done)
        done;
        Engine.sleep 100;
        List.sort compare !gens)
  in
  Alcotest.(check (list int)) "three generations" [ 0; 0; 1; 1; 2; 2 ] gens

(* Property: under arbitrary interleavings, a semaphore never admits more
   than its permit count. *)
let prop_semaphore_bound =
  QCheck.Test.make ~name:"semaphore never exceeds permits" ~count:50
    QCheck.(pair (int_range 1 4) (small_list (int_bound 20)))
    (fun (permits, delays) ->
      let peak =
        Engine.run (fun () ->
            let s = Semaphore.create permits in
            let inflight = ref 0 and peak = ref 0 in
            List.iter
              (fun d ->
                Engine.spawn (fun () ->
                    Engine.sleep d;
                    Semaphore.with_permit s (fun () ->
                        incr inflight;
                        if !inflight > !peak then peak := !inflight;
                        Engine.sleep 5;
                        decr inflight)))
              delays;
            Engine.sleep 10_000;
            !peak)
      in
      peak <= permits)

let qtest t = QCheck_alcotest.to_alcotest t

(* ------------------------------------------------------------------ *)
(* Fiber-local trace context                                          *)
(* ------------------------------------------------------------------ *)

let test_ctx_survives_sleep () =
  Engine.run (fun () ->
      Engine.set_ctx 7;
      Engine.sleep 100;
      check_int "kept across sleep" 7 (Engine.get_ctx ());
      Engine.spawn (fun () ->
          Engine.set_ctx 42;
          Engine.sleep 50);
      Engine.sleep 200;
      check_int "not clobbered by other fibers" 7 (Engine.get_ctx ()))

let test_ctx_spawn_inherits () =
  Engine.run (fun () ->
      Engine.set_ctx 5;
      let seen = ref 0 in
      Engine.spawn (fun () ->
          seen := Engine.get_ctx ();
          Engine.set_ctx 99);
      Engine.sleep 10;
      check_int "child inherited" 5 !seen;
      check_int "parent unchanged" 5 (Engine.get_ctx ()))

let test_ctx_schedule_inherits () =
  Engine.run (fun () ->
      Engine.set_ctx 6;
      let seen = ref 0 in
      Engine.schedule 100 (fun () -> seen := Engine.get_ctx ());
      Engine.set_ctx 1;
      Engine.sleep 200;
      check_int "callback saw scheduling ctx" 6 !seen)

let test_ctx_channel_adopts_sender () =
  Engine.run (fun () ->
      let ch = Channel.create () in
      Engine.spawn (fun () ->
          Engine.set_ctx 3;
          Channel.send ch "m");
      Engine.set_ctx 9;
      let _ = Channel.recv ch in
      check_int "receiver adopted sender ctx" 3 (Engine.get_ctx ()))

let test_ctx_ivar_preserves_awaiter () =
  Engine.run (fun () ->
      let iv = Ivar.create () in
      Engine.spawn (fun () ->
          Engine.set_ctx 8;
          Engine.sleep 10;
          Ivar.fill iv ());
      Engine.set_ctx 4;
      Ivar.await iv;
      check_int "awaiter keeps its own ctx" 4 (Engine.get_ctx ()))

(* ------------------------------------------------------------------ *)
(* Heap property suite: the invariants the sharded engine leans on      *)
(* ------------------------------------------------------------------ *)

(* Pop order is total on (time, seq): the popped key sequence is exactly
   the input keys sorted lexicographically. *)
let prop_heap_total_order =
  QCheck.Test.make ~name:"heap pop order total on (time, seq)" ~count:300
    QCheck.(list (pair (int_bound 100) (int_bound 100)))
    (fun keys ->
      let h = Heap.create () in
      List.iter (fun (t, s) -> Heap.push h ~time:t ~seq:s ()) keys;
      let rec drain acc =
        match Heap.pop h with
        | Some (t, s, ()) -> drain ((t, s) :: acc)
        | None -> List.rev acc
      in
      drain [] = List.sort compare keys)

(* Model-based: under any interleaving of pushes and pops the heap agrees
   with a sorted-list model. *)
let prop_heap_interleaved =
  QCheck.Test.make ~name:"heap stable under interleaved push/pop" ~count:300
    QCheck.(list (option (pair (int_bound 50) (int_bound 50))))
    (fun ops ->
      let h = Heap.create () in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Some (t, s) ->
            Heap.push h ~time:t ~seq:s (t, s);
            model := List.sort compare ((t, s) :: !model);
            Heap.length h = List.length !model
          | None -> (
            match (Heap.pop h, !model) with
            | None, [] -> true
            | Some (t, s, _), m :: rest ->
              model := rest;
              (t, s) = m
            | _ -> false))
        ops)

(* The engine's clamp discipline: every push is clamped to the last popped
   time (schedule_at never schedules into the past), and then no pop ever
   yields a time below the last popped one — the invariant that lets a
   shard's [now] advance monotonically within a window. *)
let prop_heap_never_rewinds =
  QCheck.Test.make ~name:"heap never pops below last popped time" ~count:300
    QCheck.(list (option (int_bound 100)))
    (fun ops ->
      let h = Heap.create () in
      let now = ref 0 and seq = ref 0 and ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Some t ->
            incr seq;
            Heap.push h ~time:(max t !now) ~seq:!seq ()
          | None -> (
            match Heap.pop h with
            | Some (t, _, ()) ->
              if t < !now then ok := false;
              now := t
            | None -> ()))
        ops;
      !ok)

(* ------------------------------------------------------------------ *)
(* Deadlock reports name surviving fibers                              *)
(* ------------------------------------------------------------------ *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_deadlock_names_survivors () =
  match
    Engine.run ~name:"root" (fun () ->
        Engine.spawn ~name:"stuck-worker" (fun () ->
            ignore (Ivar.await (Ivar.create () : unit Ivar.t)));
        Engine.spawn (fun () -> Engine.sleep 5);
        ignore (Ivar.await (Ivar.create () : unit Ivar.t)))
  with
  | () -> Alcotest.fail "expected Deadlock"
  | exception Engine.Deadlock msg ->
    check_bool "names root" true (contains ~sub:"\"root\"" msg);
    check_bool "names survivor" true (contains ~sub:"\"stuck-worker\"" msg)

let test_deadlock_root_only_keeps_format () =
  match
    Engine.run ~name:"lonely" (fun () ->
        ignore (Ivar.await (Ivar.create () : unit Ivar.t)))
  with
  | () -> Alcotest.fail "expected Deadlock"
  | exception Engine.Deadlock msg ->
    check_bool "historic one-liner" true
      (contains ~sub:"fiber \"lonely\" never finished" msg);
    check_bool "no survivor tail" false (contains ~sub:"still blocked" msg)

let test_finished_fiber_not_reported () =
  match
    Engine.run ~name:"root" (fun () ->
        Engine.spawn ~name:"done-worker" (fun () -> Engine.sleep 1);
        ignore (Ivar.await (Ivar.create () : unit Ivar.t)))
  with
  | () -> Alcotest.fail "expected Deadlock"
  | exception Engine.Deadlock msg ->
    check_bool "finished fiber absent" false (contains ~sub:"done-worker" msg)

(* ------------------------------------------------------------------ *)
(* Sharded engine                                                      *)
(* ------------------------------------------------------------------ *)

(* A cross-shard workload: one named fiber per shard ticks on its own
   decorrelated Prng stream and relays hops to other shards via post_to.
   Per-shard logs are only ever written by their owner shard; the merged
   (sorted) log must be identical for every domain count. *)
let sharded_workload ~shards ~domains =
  let la = 50 in
  let logs = Array.make shards [] in
  let v =
    Engine.run_sharded ~shards ~domains ~lookahead:la (fun () ->
        for s = 0 to shards - 1 do
          Engine.spawn_on
            ~name:(Printf.sprintf "worker-%d" s)
            ~shard:s
            (fun () ->
              let g = Prng.stream ~seed:42 ~id:s in
              for i = 1 to 6 do
                Engine.sleep (10 + Prng.int g 40);
                let me = Engine.shard_id () in
                logs.(me) <- (Engine.now (), s, i, 0) :: logs.(me);
                let dst = (s + i) mod shards in
                Engine.post_to ~shard:dst
                  ~time:(Engine.now () + la + Prng.int g 20)
                  (fun () ->
                    logs.(dst) <- (Engine.now (), s, i, 1) :: logs.(dst))
              done)
        done;
        17)
  in
  (v, List.sort compare (List.concat_map List.rev (Array.to_list logs)))

let test_sharded_identical_across_domains () =
  let reference = sharded_workload ~shards:4 ~domains:1 in
  List.iter
    (fun domains ->
      let r = sharded_workload ~shards:4 ~domains in
      check_bool
        (Printf.sprintf "domains=%d matches domains=1" domains)
        true
        (r = reference))
    [ 2; 3; 4; 8 ];
  let v, log = reference in
  check_int "main result" 17 v;
  check_int "log entries" (4 * 6 * 2) (List.length log)

let test_sharded_one_shard_is_serial () =
  (* shards=1 delegates to the serial engine: same clock, same result. *)
  let run_once f = f (fun () ->
      Engine.sleep 30;
      Engine.spawn (fun () -> Engine.sleep 100);
      Engine.now ())
  in
  let serial = run_once (fun m -> Engine.run m) in
  let sharded =
    run_once (fun m -> Engine.run_sharded ~shards:1 ~lookahead:10 m)
  in
  check_int "same result" serial sharded

let test_sharded_shard_identity () =
  Engine.run_sharded ~shards:3 ~domains:2 ~lookahead:20 (fun () ->
      check_int "root on shard 0" 0 (Engine.shard_id ());
      check_int "shard count" 3 (Engine.shard_count ());
      check_int "lookahead" 20 (Engine.lookahead ());
      let seen = Array.make 3 (-1) in
      for s = 0 to 2 do
        Engine.spawn_on ~shard:s (fun () ->
            seen.(s) <- Engine.shard_id ())
      done;
      (* Outlive the remote spawns (they begin one lookahead out). *)
      Engine.sleep 100;
      Array.iteri
        (fun s got -> check_int (Printf.sprintf "fiber %d placed" s) s got)
        seen)

let test_sharded_conservative_violation () =
  match
    Engine.run_sharded ~shards:2 ~lookahead:50 (fun () ->
        Engine.sleep 1;
        (* now + 10 < window_end: conservatively illegal *)
        Engine.post_to ~shard:1 ~time:(Engine.now () + 10) (fun () -> ()))
  with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
    check_bool "names the violation" true
      (contains ~sub:"conservative violation" msg)

let test_sharded_failure_propagates () =
  let boom = Failure "shard-1 exploded" in
  match
    Engine.run_sharded ~shards:2 ~domains:2 ~lookahead:10 (fun () ->
        Engine.spawn_on ~shard:1 (fun () ->
            Engine.sleep 5;
            raise boom);
        Engine.sleep 1_000)
  with
  | () -> Alcotest.fail "expected failure to propagate"
  | exception Failure m -> Alcotest.(check string) "error" "shard-1 exploded" m

let test_sharded_deadlock_names_remote_survivor () =
  match
    Engine.run_sharded ~shards:2 ~lookahead:10 (fun () ->
        Engine.spawn_on ~name:"remote-stuck" ~shard:1 (fun () ->
            ignore (Ivar.await (Ivar.create () : unit Ivar.t)));
        ignore (Ivar.await (Ivar.create () : unit Ivar.t)))
  with
  | () -> Alcotest.fail "expected Deadlock"
  | exception Engine.Deadlock msg ->
    check_bool "names remote survivor" true (contains ~sub:"remote-stuck" msg)

(* ------------------------------------------------------------------ *)
(* Domains: parallel independent simulations                           *)
(* ------------------------------------------------------------------ *)

let test_domains_map_order () =
  let tasks = List.init 10 (fun i -> i) in
  let f i =
    (* each task is its own little simulation, proving isolation *)
    Engine.run (fun () ->
        Engine.sleep (100 - (10 * i));
        i * i)
  in
  let expect = List.map (fun i -> i * i) tasks in
  Alcotest.(check (list int))
    "serial path ordered" expect
    (Domains.map ~domains:1 ~prepare:(fun () -> ()) f tasks);
  Alcotest.(check (list int))
    "parallel path ordered" expect
    (Domains.map ~domains:4 ~prepare:(fun () -> ()) f tasks)

let test_domains_map_prepare_runs_per_task () =
  let calls = Atomic.make 0 in
  let r =
    Domains.map ~domains:3
      ~prepare:(fun () -> Atomic.incr calls)
      (fun i -> i + 1)
      [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check (list int)) "results" [ 2; 3; 4; 5; 6 ] r;
  check_int "prepare per task" 5 (Atomic.get calls)

let test_domains_map_first_failure_wins () =
  let f i = if i >= 3 then failwith (Printf.sprintf "task-%d" i) else i in
  match Domains.map ~domains:4 ~prepare:(fun () -> ()) f [ 0; 1; 2; 3; 4; 5 ] with
  | _ -> Alcotest.fail "expected failure"
  | exception Failure m ->
    Alcotest.(check string) "first by task order" "task-3" m

let () =
  Alcotest.run "fractos_sim"
    [
      ( "heap",
        [
          Alcotest.test_case "pop order" `Quick test_heap_order;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "growth" `Quick test_heap_growth;
          qtest prop_heap_sorted;
          qtest prop_heap_total_order;
          qtest prop_heap_interleaved;
          qtest prop_heap_never_rewinds;
        ] );
      ( "deadlock",
        [
          Alcotest.test_case "names survivors" `Quick
            test_deadlock_names_survivors;
          Alcotest.test_case "root-only format" `Quick
            test_deadlock_root_only_keeps_format;
          Alcotest.test_case "finished fiber absent" `Quick
            test_finished_fiber_not_reported;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "identical across domains" `Quick
            test_sharded_identical_across_domains;
          Alcotest.test_case "one shard is serial" `Quick
            test_sharded_one_shard_is_serial;
          Alcotest.test_case "shard identity" `Quick test_sharded_shard_identity;
          Alcotest.test_case "conservative violation" `Quick
            test_sharded_conservative_violation;
          Alcotest.test_case "failure propagates" `Quick
            test_sharded_failure_propagates;
          Alcotest.test_case "deadlock names remote survivor" `Quick
            test_sharded_deadlock_names_remote_survivor;
        ] );
      ( "domains",
        [
          Alcotest.test_case "map preserves order" `Quick test_domains_map_order;
          Alcotest.test_case "prepare per task" `Quick
            test_domains_map_prepare_runs_per_task;
          Alcotest.test_case "first failure wins" `Quick
            test_domains_map_first_failure_wins;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_prng_seeds_differ;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "split" `Quick test_prng_split_independent;
          Alcotest.test_case "fill_bytes" `Quick test_prng_fill_bytes;
        ] );
      ( "time",
        [
          Alcotest.test_case "units" `Quick test_time_units;
          Alcotest.test_case "pp" `Quick test_time_pp;
        ] );
      ( "engine",
        [
          Alcotest.test_case "returns" `Quick test_engine_returns;
          Alcotest.test_case "t0" `Quick test_engine_clock_starts_at_zero;
          Alcotest.test_case "sleep" `Quick test_engine_sleep_advances;
          Alcotest.test_case "negative sleep" `Quick test_engine_negative_sleep;
          Alcotest.test_case "sleep_until" `Quick test_engine_sleep_until;
          Alcotest.test_case "spawn interleave" `Quick
            test_engine_spawn_interleave;
          Alcotest.test_case "same-instant fifo" `Quick
            test_engine_same_instant_fifo;
          Alcotest.test_case "exception propagates" `Quick
            test_engine_exception_propagates;
          Alcotest.test_case "deadlock" `Quick test_engine_deadlock_detected;
          Alcotest.test_case "root error wins instant" `Quick
            test_engine_root_error_wins_same_instant;
          Alcotest.test_case "raw event no mask" `Quick
            test_engine_raw_event_error_does_not_mask_root;
          Alcotest.test_case "failure beats deadlock" `Quick
            test_engine_failure_preferred_over_deadlock;
          Alcotest.test_case "stops after failure" `Quick
            test_engine_stops_after_failure_instant;
          Alcotest.test_case "schedule" `Quick test_engine_schedule;
          Alcotest.test_case "no nesting" `Quick test_engine_no_nesting;
          Alcotest.test_case "outside raises" `Quick test_engine_outside_raises;
          Alcotest.test_case "determinism" `Quick test_engine_determinism;
        ] );
      ( "ivar",
        [
          Alcotest.test_case "fill then await" `Quick test_ivar_fill_then_await;
          Alcotest.test_case "await then fill" `Quick test_ivar_await_then_fill;
          Alcotest.test_case "multiple waiters" `Quick
            test_ivar_multiple_waiters;
          Alcotest.test_case "double fill" `Quick test_ivar_double_fill_rejected;
          Alcotest.test_case "exn" `Quick test_ivar_exn;
          Alcotest.test_case "resume time" `Quick
            test_ivar_await_resumes_at_fill_time;
          Alcotest.test_case "timeout expires" `Quick test_ivar_timeout_expires;
          Alcotest.test_case "timeout wins" `Quick test_ivar_timeout_wins;
        ] );
      ( "channel",
        [
          Alcotest.test_case "fifo" `Quick test_channel_fifo;
          Alcotest.test_case "blocking recv" `Quick test_channel_blocking_recv;
          Alcotest.test_case "receiver order" `Quick
            test_channel_multiple_receivers_fifo;
          Alcotest.test_case "try_recv" `Quick test_channel_try_recv;
        ] );
      ( "resource",
        [
          Alcotest.test_case "serializes" `Quick test_resource_serializes;
          Alcotest.test_case "parallel servers" `Quick
            test_resource_parallel_servers;
          Alcotest.test_case "idle gap" `Quick test_resource_idle_gap;
          Alcotest.test_case "busy accounting" `Quick
            test_resource_busy_accounting;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "heap peek/clear" `Quick test_heap_peek_and_clear;
          Alcotest.test_case "time pp seconds" `Quick test_time_seconds_pp;
          Alcotest.test_case "exponential mean" `Quick
            test_prng_exponential_mean;
          Alcotest.test_case "channel waiters" `Quick
            test_channel_waiters_count;
          Alcotest.test_case "resource busy_until" `Quick
            test_resource_busy_until;
          Alcotest.test_case "fiber count" `Quick test_engine_fiber_count;
          Alcotest.test_case "ivar try_fill/peek" `Quick
            test_ivar_try_fill_and_peek;
        ] );
      ( "ctx",
        [
          Alcotest.test_case "survives sleep" `Quick test_ctx_survives_sleep;
          Alcotest.test_case "spawn inherits" `Quick test_ctx_spawn_inherits;
          Alcotest.test_case "schedule inherits" `Quick
            test_ctx_schedule_inherits;
          Alcotest.test_case "channel adopts sender" `Quick
            test_ctx_channel_adopts_sender;
          Alcotest.test_case "ivar preserves awaiter" `Quick
            test_ctx_ivar_preserves_awaiter;
        ] );
      ( "waitgroup",
        [
          Alcotest.test_case "waits for all" `Quick test_waitgroup_waits_for_all;
          Alcotest.test_case "immediate when empty" `Quick
            test_waitgroup_immediate_when_empty;
          Alcotest.test_case "multiple waiters" `Quick
            test_waitgroup_multiple_waiters;
          Alcotest.test_case "misuse" `Quick test_waitgroup_misuse;
        ] );
      ( "barrier",
        [
          Alcotest.test_case "releases together" `Quick
            test_barrier_releases_together;
          Alcotest.test_case "cycles" `Quick test_barrier_cycles;
        ] );
      ( "semaphore",
        [
          Alcotest.test_case "limits concurrency" `Quick
            test_semaphore_limits_concurrency;
          Alcotest.test_case "fifo" `Quick test_semaphore_fifo;
          Alcotest.test_case "try_acquire" `Quick test_semaphore_try_acquire;
          Alcotest.test_case "release waiter" `Quick
            test_semaphore_release_while_waiting;
          qtest prop_semaphore_bound;
        ] );
    ]
