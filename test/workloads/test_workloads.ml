(* Tests for the workload generators: the face dataset and the open-loop
   load generator. *)

open Fractos_sim
module Facedata = Fractos_workloads.Facedata
module Loadgen = Fractos_workloads.Loadgen

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Facedata                                                           *)
(* ------------------------------------------------------------------ *)

let test_images_deterministic () =
  check_bool "same id same image" true
    (Bytes.equal (Facedata.image ~img_size:64 ~id:3)
       (Facedata.image ~img_size:64 ~id:3));
  check_bool "different ids differ" false
    (Bytes.equal (Facedata.image ~img_size:64 ~id:3)
       (Facedata.image ~img_size:64 ~id:4))

let test_db_layout () =
  let db = Facedata.db ~img_size:32 ~n:8 in
  check_int "size" (32 * 8) (Bytes.length db);
  for i = 0 to 7 do
    check_bool
      (Printf.sprintf "entry %d in place" i)
      true
      (Bytes.equal (Bytes.sub db (i * 32) 32) (Facedata.image ~img_size:32 ~id:i))
  done

let test_probe_genuine_vs_impostor () =
  check_bool "genuine matches db" true
    (Bytes.equal
       (Facedata.probe ~img_size:32 ~id:5 ~genuine:true)
       (Facedata.image ~img_size:32 ~id:5));
  check_bool "impostor differs" false
    (Bytes.equal
       (Facedata.probe ~img_size:32 ~id:5 ~genuine:false)
       (Facedata.image ~img_size:32 ~id:5))

let test_expected_matches_align_with_batch () =
  let img_size = 16 and batch = 9 and impostor_every = 3 in
  let probes =
    Facedata.probe_batch ~img_size ~start_id:4 ~batch ~impostor_every
  in
  let expected = Facedata.expected_matches ~batch ~impostor_every in
  for i = 0 to batch - 1 do
    let p = Bytes.sub probes (i * img_size) img_size in
    let d = Facedata.image ~img_size ~id:(4 + i) in
    let matches = Bytes.equal p d in
    check_bool
      (Printf.sprintf "probe %d agrees with ground truth" i)
      (Bytes.get expected i = '\001')
      matches
  done

(* ------------------------------------------------------------------ *)
(* Loadgen                                                            *)
(* ------------------------------------------------------------------ *)

let test_summarize_percentiles () =
  let lats = List.init 100 (fun i -> (i + 1) * 10) in
  let s = Loadgen.summarize lats 123 in
  check_int "n" 100 s.Loadgen.n;
  check_int "mean" 505 s.Loadgen.mean;
  check_int "p50" 510 s.Loadgen.p50;
  check_int "p99" 990 s.Loadgen.p99;
  check_int "max" 1000 s.Loadgen.max;
  check_int "elapsed" 123 s.Loadgen.elapsed

let test_summarize_empty () =
  (* [] used to raise Invalid_argument, crashing the report of any run
     that completed zero requests (heavy chaos shedding); it must return
     the all-zero summary instead *)
  let s = Loadgen.summarize [] 456 in
  check_int "n" 0 s.Loadgen.n;
  check_int "mean" 0 s.Loadgen.mean;
  check_int "p50" 0 s.Loadgen.p50;
  check_int "p95" 0 s.Loadgen.p95;
  check_int "p99" 0 s.Loadgen.p99;
  check_int "max" 0 s.Loadgen.max;
  check_int "elapsed preserved" 456 s.Loadgen.elapsed

let test_open_loop_counts_and_rate () =
  Engine.run (fun () ->
      let rng = Prng.create ~seed:1 in
      (* each request takes 100 us; offered rate 1000/s => mean gap 1 ms:
         system is underloaded, latency stays at the service time *)
      let s =
        Loadgen.run_open_loop ~rng ~rate_per_s:1000. ~n:50 (fun _ ->
            Engine.sleep (Time.us 100))
      in
      check_int "all completed" 50 s.Loadgen.n;
      check_int "underloaded latency = service time" (Time.us 100)
        s.Loadgen.p99;
      (* elapsed should be near 50 arrivals x 1 ms *)
      check_bool "elapsed tracks offered rate" true
        (s.Loadgen.elapsed > Time.ms 20 && s.Loadgen.elapsed < Time.ms 120))

let test_open_loop_queueing_shows_in_tail () =
  Engine.run (fun () ->
      let rng = Prng.create ~seed:2 in
      (* single server, service 1 ms, offered 900/s: utilization 0.9 =>
         heavy queueing in the tail *)
      let server = Resource.create () in
      let s =
        Loadgen.run_open_loop ~rng ~rate_per_s:900. ~n:80 (fun _ ->
            Resource.use server ~duration:(Time.ms 1))
      in
      check_bool "p99 well above service time" true
        (s.Loadgen.p99 > 2 * Time.ms 1))

let test_open_loop_zero_requests () =
  Engine.run (fun () ->
      let rng = Prng.create ~seed:3 in
      (* n = 0 used to deadlock: the completion ivar was never filled and
         the caller blocked forever; now it returns a zero summary *)
      let iv = Ivar.create () in
      Engine.spawn (fun () ->
          Ivar.fill iv
            (Loadgen.run_open_loop ~rng ~rate_per_s:1000. ~n:0 (fun _ ->
                 Alcotest.fail "request fired for n = 0")));
      match Ivar.await_timeout iv ~timeout:(Time.ms 10) with
      | None -> Alcotest.fail "run_open_loop deadlocked on n = 0"
      | Some s ->
        check_int "zero samples" 0 s.Loadgen.n;
        check_int "zero mean" 0 s.Loadgen.mean;
        check_int "zero p99" 0 s.Loadgen.p99;
        check_int "zero elapsed" 0 s.Loadgen.elapsed)

let test_open_loop_negative_rejected () =
  Engine.run (fun () ->
      let rng = Prng.create ~seed:4 in
      match
        Loadgen.run_open_loop ~rng ~rate_per_s:1000. ~n:(-1) (fun _ -> ())
      with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "n = -1 accepted")

let () =
  Alcotest.run "fractos_workloads"
    [
      ( "facedata",
        [
          Alcotest.test_case "deterministic" `Quick test_images_deterministic;
          Alcotest.test_case "db layout" `Quick test_db_layout;
          Alcotest.test_case "genuine vs impostor" `Quick
            test_probe_genuine_vs_impostor;
          Alcotest.test_case "ground truth alignment" `Quick
            test_expected_matches_align_with_batch;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "percentiles" `Quick test_summarize_percentiles;
          Alcotest.test_case "empty samples" `Quick test_summarize_empty;
          Alcotest.test_case "open loop underload" `Quick
            test_open_loop_counts_and_rate;
          Alcotest.test_case "queueing tail" `Quick
            test_open_loop_queueing_shows_in_tail;
          Alcotest.test_case "zero requests" `Quick
            test_open_loop_zero_requests;
          Alcotest.test_case "negative rejected" `Quick
            test_open_loop_negative_rejected;
        ] );
    ]
