(* Tests for the fault-injection subsystem: spec parsing, plan generation,
   the retry policy, and the chaos harness itself. *)

open Fractos_sim
module Net = Fractos_net
module Core = Fractos_core
module Tb = Fractos_testbed.Testbed
module Svc = Fractos_services.Svc
open Fractos_fault

let ok_exn = Core.Error.ok_exn
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let qtest t = QCheck_alcotest.to_alcotest t

(* ------------------------------------------------------------------ *)
(* Spec                                                               *)
(* ------------------------------------------------------------------ *)

let test_spec_special_forms () =
  (match Spec.of_string "default" with
  | Ok s -> check_bool "default" true (s = Spec.default)
  | Error e -> Alcotest.fail e);
  (match Spec.of_string "" with
  | Ok s -> check_bool "empty = default" true (s = Spec.default)
  | Error e -> Alcotest.fail e);
  (match Spec.of_string "none" with
  | Ok s -> check_bool "none" true (s = Spec.none)
  | Error e -> Alcotest.fail e);
  (* overrides apply on top of [none] *)
  match Spec.of_string "drop=0.25,crash=2,delay=30us" with
  | Ok s ->
    check_bool "drop" true (s.Spec.s_drop = 0.25);
    check_int "crash" 2 s.Spec.s_crashes;
    check_int "delay" (Time.us 30) s.Spec.s_delay;
    check_int "others stay none" 0 s.Spec.s_partitions
  | Error e -> Alcotest.fail e

let test_spec_parse_errors () =
  let bad str =
    match Spec.of_string str with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %S" str
  in
  bad "frobnicate=1";
  bad "drop=1.5";
  bad "drop=-0.1";
  bad "crash=-1";
  bad "delay=30";
  bad "delay=fast";
  bad "drop";
  bad "crash=1,,"

let test_spec_lossless () =
  check_bool "none lossless" true (Spec.lossless Spec.none);
  check_bool "default lossy" false (Spec.lossless Spec.default);
  let s = { Spec.none with Spec.s_dup = 0.5; s_delay_p = 0.5; s_crashes = 3 } in
  check_bool "dup/delay/crash still lossless" true (Spec.lossless s);
  check_bool "partition is lossy" false
    (Spec.lossless { Spec.none with Spec.s_partitions = 1 });
  check_bool "lossy link with zero drop is lossless" true
    (Spec.lossless { Spec.none with Spec.s_lossy_links = 2 })

let gen_prob = QCheck.Gen.map (fun n -> float_of_int n /. 1000.) QCheck.Gen.(0 -- 1000)

let gen_time =
  QCheck.Gen.(
    oneof
      [
        map Time.ns (0 -- 999);
        map Time.us (1 -- 999);
        map Time.ms (1 -- 20);
      ])

let gen_spec =
  QCheck.Gen.(
    gen_prob >>= fun s_drop ->
    gen_prob >>= fun s_dup ->
    gen_prob >>= fun s_delay_p ->
    gen_time >>= fun s_delay ->
    0 -- 4 >>= fun s_crashes ->
    gen_time >>= fun s_reboot_after ->
    0 -- 3 >>= fun s_partitions ->
    gen_time >>= fun s_partition_len ->
    0 -- 3 >>= fun s_stalls ->
    gen_time >>= fun s_stall_len ->
    0 -- 3 >>= fun s_lossy_links ->
    gen_prob >>= fun s_lossy_drop ->
    map Time.ms (1 -- 50) >>= fun s_horizon ->
    return
      {
        Spec.s_drop;
        s_dup;
        s_delay_p;
        s_delay;
        s_crashes;
        s_reboot_after;
        s_partitions;
        s_partition_len;
        s_stalls;
        s_stall_len;
        s_lossy_links;
        s_lossy_drop;
        s_horizon;
      })

let arb_spec = QCheck.make ~print:Spec.to_string gen_spec

let qcheck_spec_roundtrip =
  QCheck.Test.make ~name:"spec to_string/of_string round-trips" ~count:300
    arb_spec (fun s ->
      match Spec.of_string (Spec.to_string s) with
      | Ok s' -> s' = s
      | Error e -> QCheck.Test.fail_reportf "parse failed: %s" e)

(* ------------------------------------------------------------------ *)
(* Plan                                                               *)
(* ------------------------------------------------------------------ *)

let qcheck_plan_deterministic =
  QCheck.Test.make ~name:"plan generation is deterministic per seed" ~count:50
    QCheck.(pair (QCheck.make gen_spec) small_nat)
    (fun (spec, seed) ->
      let a = Plan.generate ~spec ~seed ~n_ctrls:4 ~n_nodes:4 in
      let b = Plan.generate ~spec ~seed ~n_ctrls:4 ~n_nodes:4 in
      Plan.equal a b && Plan.to_lines a = Plan.to_lines b)

let qcheck_plan_well_formed =
  QCheck.Test.make ~name:"plan events are sorted, bounded and well-formed"
    ~count:100
    QCheck.(pair (QCheck.make gen_spec) small_nat)
    (fun (spec, seed) ->
      let n_ctrls = 4 and n_nodes = 4 in
      let pl = Plan.generate ~spec ~seed ~n_ctrls ~n_nodes in
      let start = function
        | Plan.Crash { at; _ } | Plan.Reboot { at; _ } | Plan.Stall { at; _ }
          ->
          at
        | Plan.Partition { from_; _ } -> from_
      in
      let rec sorted = function
        | a :: (b :: _ as rest) -> start a <= start b && sorted rest
        | _ -> true
      in
      sorted pl.Plan.pl_events
      && List.for_all
           (function
             | Plan.Crash { at; ctrl } ->
               at >= 0 && at < spec.Spec.s_horizon && ctrl >= 0
               && ctrl < n_ctrls
             | Plan.Reboot { at; ctrl } ->
               at >= 0 && ctrl >= 0 && ctrl < n_ctrls
             | Plan.Partition { from_; until; island } ->
               from_ >= 0
               && until = from_ + spec.Spec.s_partition_len
               && island <> []
               && List.length island < n_nodes
               && List.for_all (fun i -> i >= 0 && i < n_nodes) island
             | Plan.Stall { at; until; node } ->
               at >= 0
               && until = at + spec.Spec.s_stall_len
               && node >= 0 && node < n_nodes)
           pl.Plan.pl_events)

let test_plan_structure () =
  let pl = Plan.generate ~spec:Spec.default ~seed:42 ~n_ctrls:4 ~n_nodes:4 in
  let crashes =
    List.filter_map
      (function Plan.Crash { at; ctrl } -> Some (at, ctrl) | _ -> None)
      pl.Plan.pl_events
  in
  let reboots =
    List.filter_map
      (function Plan.Reboot { at; ctrl } -> Some (at, ctrl) | _ -> None)
      pl.Plan.pl_events
  in
  check_int "one crash" 1 (List.length crashes);
  check_int "one reboot" 1 (List.length reboots);
  let cat, cctrl = List.hd crashes and rat, rctrl = List.hd reboots in
  check_int "reboot follows its crash" (cat + Spec.default.Spec.s_reboot_after)
    rat;
  check_int "same controller" cctrl rctrl;
  check_int "one lossy link" 1 (List.length pl.Plan.pl_lossy);
  let a, b = List.hd pl.Plan.pl_lossy in
  check_bool "lossy pair ordered distinct" true (a < b && b < 4);
  (* no reboot events when reboot_after is zero: crashed controllers stay
     down *)
  let spec = { Spec.default with Spec.s_reboot_after = 0 } in
  let pl = Plan.generate ~spec ~seed:42 ~n_ctrls:4 ~n_nodes:4 in
  check_int "no reboots" 0
    (List.length
       (List.filter
          (function Plan.Reboot _ -> true | _ -> false)
          pl.Plan.pl_events))

let test_plan_degenerate_topology () =
  (* tiny topologies must not crash plan generation (Prng.int bound > 0) *)
  let pl = Plan.generate ~spec:Spec.default ~seed:7 ~n_ctrls:0 ~n_nodes:1 in
  check_bool "no crash events without controllers" true
    (List.for_all
       (function Plan.Crash _ | Plan.Reboot _ -> false | _ -> true)
       pl.Plan.pl_events);
  check_bool "no partitions on one node" true
    (List.for_all
       (function Plan.Partition _ -> false | _ -> true)
       pl.Plan.pl_events);
  check_int "no lossy links" 0 (List.length pl.Plan.pl_lossy)

(* ------------------------------------------------------------------ *)
(* Retry                                                              *)
(* ------------------------------------------------------------------ *)

let test_retry_backoff_golden () =
  (* base 10us doubling to the 640us cap: the documented golden sequence *)
  let expected = [ 10; 20; 40; 80; 160; 320; 640; 640 ] in
  List.iteri
    (fun i us ->
      check_int
        (Printf.sprintf "backoff after attempt %d" (i + 1))
        (Time.us us)
        (Retry.backoff Retry.default ~attempt:(i + 1)))
    expected

let test_retry_budget_exhaustion () =
  Engine.run (fun () ->
      Retry.reset_counters ();
      let attempts = ref 0 in
      let r =
        Retry.run
          ~policy:
            {
              Retry.p_attempts = 4;
              p_timeout = Time.ms 1;
              p_backoff_base = Time.us 10;
              p_backoff_cap = Time.us 40;
            }
          (fun () ->
            incr attempts;
            Error Core.Error.Timeout)
      in
      check_bool "returns the typed error, never raises" true
        (r = Error Core.Error.Timeout);
      check_int "exactly p_attempts attempts" 4 !attempts;
      check_int "three retry sleeps counted" 3 (Retry.retries ()))

let test_retry_transient_then_ok () =
  Engine.run (fun () ->
      let n = ref 0 in
      let refreshed = ref 0 in
      let r =
        Retry.run
          ~refresh:(fun e ->
            if e = Core.Error.Stale then incr refreshed)
          (fun () ->
            incr n;
            if !n < 3 then Error Core.Error.Stale else Ok "done")
      in
      check_bool "eventual success" true (r = Ok "done");
      check_int "two failures before success" 3 !n;
      check_int "refresh ran on each stale" 2 !refreshed)

let test_retry_permanent_error_stops () =
  Engine.run (fun () ->
      let n = ref 0 in
      let r =
        Retry.run (fun () ->
            incr n;
            Error Core.Error.Perm_denied)
      in
      check_bool "error surfaced" true (r = Error Core.Error.Perm_denied);
      check_int "no retries on a permanent error" 1 !n)

let test_retry_timeout_converts_hang () =
  Engine.run (fun () ->
      let t0 = Engine.now () in
      let r =
        Retry.with_timeout ~timeout:(Time.us 50) (fun () ->
            Engine.sleep (Time.s 10);
            Ok ())
      in
      check_bool "hang became Timeout" true (r = Error Core.Error.Timeout);
      check_int "gave up at the deadline" (Time.us 50) (Engine.now () - t0);
      (* a raising operation is converted to a typed error, not an escape *)
      let r =
        Retry.with_timeout ~timeout:(Time.ms 1) (fun () ->
            raise (Core.Error.Fractos Core.Error.Bounds))
      in
      check_bool "raise became Error" true (r = Error Core.Error.Bounds))

let test_retry_absorbs_overloaded () =
  Engine.run (fun () ->
      let n = ref 0 in
      let r =
        Retry.run (fun () ->
            incr n;
            if !n <= 2 then Error Core.Error.Overloaded else Ok ())
      in
      check_bool "ok after backoff" true (r = Ok ());
      check_int "two sheds then success" 3 !n)

(* ------------------------------------------------------------------ *)
(* Fabric duplication end-to-end: no duplicate side effects            *)
(* ------------------------------------------------------------------ *)

let test_duplicated_invoke_single_side_effect () =
  Tb.run (fun tb ->
      let setups = Tb.nodes_with_ctrls tb Tb.Ctrl_cpu [ "a"; "b" ] in
      let sa = List.nth setups 0 and sb = List.nth setups 1 in
      let pa = Tb.add_proc tb ~on:sa.Tb.node ~ctrl:sa.Tb.ctrl "client" in
      let pb = Tb.add_proc tb ~on:sb.Tb.node ~ctrl:sb.Tb.ctrl "server" in
      let client = Svc.create pa and server = Svc.create pb in
      let effects = ref 0 in
      Svc.handle server ~tag:"incr" (fun svc d ->
          incr effects;
          Svc.reply svc d ~status:!effects ());
      let svc =
        Tb.grant ~src:pb ~dst:pa
          (ok_exn (Core.Api.request_create pb ~tag:"incr" ()))
      in
      (* duplicate every single fabric message *)
      Net.Fabric.set_fault_hook tb.Tb.fabric
        (Some (fun ~src:_ ~dst:_ ~cls:_ ~size:_ -> Net.Fabric.Duplicate));
      for i = 1 to 5 do
        let d = ok_exn (Svc.call client ~svc ()) in
        check_int "reply status is the effect count" i (Svc.status d)
      done;
      Net.Fabric.set_fault_hook tb.Tb.fabric None;
      check_int "handler ran once per logical invoke" 5 !effects)

(* ------------------------------------------------------------------ *)
(* Local (loopback) sends ignore Drop/Duplicate                        *)
(* ------------------------------------------------------------------ *)

module Obs = Fractos_obs

(* Injected faults model a lossy switch; a Process talking to its
   co-located controller never crosses one. Drop/Duplicate on the local
   path used to hang callers (the seed honored them), now they are
   downgraded to Pass and counted in net.fault_local_ignored — and every
   fabric.xfer span still finishes exactly once. *)
let test_local_faults_ignored () =
  Obs.Span.reset ();
  Obs.Span.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Span.set_enabled false) @@ fun () ->
  Tb.run (fun tb ->
      let a = Tb.add_host tb "a" in
      let ca = Tb.add_ctrl tb ~on:a in
      let p = Tb.add_proc tb ~on:a ~ctrl:ca "p" in
      let cv name =
        Obs.Metrics.counter_value (Obs.Metrics.counter ~node:"a" name)
      in
      let drops0 = cv "net.fault_drops" in
      let dups0 = cv "net.fault_dups" in
      let ign0 = cv "net.fault_local_ignored" in
      Net.Fabric.set_fault_hook tb.Tb.fabric
        (Some (fun ~src:_ ~dst:_ ~cls:_ ~size:_ -> Net.Fabric.Drop));
      (* a dropped local message would hang this syscall forever *)
      let iv = Ivar.create () in
      Engine.spawn (fun () -> Ivar.fill iv (Core.Api.null p));
      (match Ivar.await_timeout iv ~timeout:(Time.ms 5) with
      | Some (Ok ()) -> ()
      | Some (Error e) ->
        Alcotest.failf "null failed: %s" (Core.Error.to_string e)
      | None -> Alcotest.fail "local Drop was honored: syscall hung");
      (* a duplicated local message must deliver exactly once; null's
         reply ivar would trip Ivar.fill twice otherwise *)
      Net.Fabric.set_fault_hook tb.Tb.fabric
        (Some (fun ~src:_ ~dst:_ ~cls:_ ~size:_ -> Net.Fabric.Duplicate));
      ok_exn (Core.Api.null p);
      Net.Fabric.set_fault_hook tb.Tb.fabric None;
      check_int "no local drops counted" 0 (cv "net.fault_drops" - drops0);
      check_int "no local dups counted" 0 (cv "net.fault_dups" - dups0);
      check_bool "ignored local faults counted" true
        (cv "net.fault_local_ignored" - ign0 > 0));
  let xfers =
    List.filter
      (fun s -> s.Obs.Span.sp_name = "fabric.xfer")
      (Obs.Span.all ())
  in
  check_bool "xfer spans recorded" true (xfers <> []);
  List.iter
    (fun s ->
      check_bool "fabric.xfer span finished" true s.Obs.Span.sp_finished)
    xfers

(* ------------------------------------------------------------------ *)
(* Chaos harness                                                      *)
(* ------------------------------------------------------------------ *)

let small_chaos ?(spec = Spec.none) ?(workload = Chaos.Mixed) ?config seed =
  Chaos.run ~clients:4 ~requests:8 ~workload ?config ~spec ~seed ()

let pipelined_config =
  { Net.Config.default with copy_window = 8; copy_streams = 4 }

let test_chaos_clean_run () =
  let r = small_chaos 1 in
  check_bool "no violations" true (Chaos.passed r);
  check_int "all requests ok" 8 r.Chaos.r_ok;
  check_int "no retries without faults" 0 r.Chaos.r_retries;
  check_bool "audit saw traffic" true (r.Chaos.r_audit_events > 0);
  List.iter
    (fun (id, epoch, live, tomb) ->
      check_int (Printf.sprintf "ctrl %d epoch" id) 0 epoch;
      check_int (Printf.sprintf "ctrl %d tombstones" id) 0 tomb;
      check_bool (Printf.sprintf "ctrl %d live sane" id) true (live >= 0))
    r.Chaos.r_ctrls

let test_chaos_deterministic () =
  let spec =
    match Spec.of_string "drop=0.01,dup=0.01,crash=1,reboot=400us" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let a = small_chaos ~spec 7 in
  let b = small_chaos ~spec 7 in
  check_string "same audit digest" a.Chaos.r_audit_digest
    b.Chaos.r_audit_digest;
  check_bool "bit-identical report" true (Chaos.to_lines a = Chaos.to_lines b);
  check_int "same outcome count" a.Chaos.r_ok b.Chaos.r_ok;
  check_int "same retry count" a.Chaos.r_retries b.Chaos.r_retries;
  (* a different seed perturbs the run *)
  let c = small_chaos ~spec 8 in
  check_bool "different seed, different digest" true
    (a.Chaos.r_audit_digest <> c.Chaos.r_audit_digest)

let test_chaos_default_spec_invariants () =
  let r = small_chaos ~spec:Spec.default 3 in
  check_bool
    (String.concat "; " r.Chaos.r_violations)
    true (Chaos.passed r);
  (* every request either completed or surfaced a typed error *)
  let errs = List.fold_left (fun n (_, c) -> n + c) 0 r.Chaos.r_errors in
  check_int "ok + errors = requests" r.Chaos.r_requests (r.Chaos.r_ok + errs)

let test_chaos_crash_epoch_bump () =
  (* an early crash+reboot must leave the victim controller at epoch 1 and
     the stale-rejection invariants intact, across all three workloads *)
  let spec =
    match Spec.of_string "crash=1,reboot=200us,horizon=500us" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  List.iter
    (fun workload ->
      let r = small_chaos ~spec ~workload 2 in
      check_bool
        (Printf.sprintf "workload %s: %s"
           (Chaos.workload_to_string workload)
           (String.concat "; " r.Chaos.r_violations))
        true (Chaos.passed r);
      check_bool "some controller rebooted" true
        (List.exists (fun (_, epoch, _, _) -> epoch = 1) r.Chaos.r_ctrls))
    [ Chaos.Faceverify; Chaos.Fs; Chaos.Mixed; Chaos.Copy; Chaos.Xshard ]

let test_chaos_copy_workload () =
  (* large third-party copies under drop/dup/delay: every request must end
     in a typed completion (ok or error, no hangs), delivered bytes must be
     intact (Chaos.Copy byte-checks each completion), and no copy-session
     state may leak (Invariants pass 5) — for both the serial engine and
     the windowed multi-stream one *)
  List.iter
    (fun config ->
      let r = small_chaos ~spec:Spec.default ~workload:Chaos.Copy ?config 11 in
      check_bool
        (String.concat "; " r.Chaos.r_violations)
        true (Chaos.passed r);
      let errs = List.fold_left (fun n (_, c) -> n + c) 0 r.Chaos.r_errors in
      check_int "ok + errors = requests" r.Chaos.r_requests
        (r.Chaos.r_ok + errs))
    [ None; Some pipelined_config ]

let test_chaos_copy_deterministic () =
  (* the pipelined engine keeps the harness bit-deterministic: same seed,
     same digest — even with multi-stream reordering in play *)
  let spec =
    match Spec.of_string "drop=0.01,dup=0.01,delayp=0.05,delay=30us" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let a =
    small_chaos ~spec ~workload:Chaos.Copy ~config:pipelined_config 13
  in
  let b =
    small_chaos ~spec ~workload:Chaos.Copy ~config:pipelined_config 13
  in
  check_string "same audit digest" a.Chaos.r_audit_digest
    b.Chaos.r_audit_digest;
  check_bool "bit-identical report" true (Chaos.to_lines a = Chaos.to_lines b)

(* A lost P_copy_open used to park the session's chunks in [copy_pending]
   forever (and hang the caller, whose ack rides the final chunk). The
   open timeout must reclaim the parked state and fail the copy with a
   typed error. *)
let test_copy_open_drop_cleanup () =
  Tb.run ~config:pipelined_config (fun tb ->
      let setups = Tb.nodes_with_ctrls tb Tb.Ctrl_cpu [ "a"; "b" ] in
      let sa = List.nth setups 0 and sb = List.nth setups 1 in
      let pa = Tb.add_proc tb ~on:sa.Tb.node ~ctrl:sa.Tb.ctrl "pa" in
      let pb = Tb.add_proc tb ~on:sb.Tb.node ~ctrl:sb.Tb.ctrl "pb" in
      let n = 128 * 1024 in
      let src_buf = Core.Process.alloc pa n in
      let dst_buf = Core.Process.alloc pb n in
      let src = ok_exn (Core.Api.memory_create pa src_buf Core.Perms.ro) in
      let dst =
        Tb.grant ~src:pb ~dst:pa
          (ok_exn (Core.Api.memory_create pb dst_buf Core.Perms.rw))
      in
      (* drop exactly the first cross-node bulk Data message: the
         session-opening chunk; the rest of the window sails past it *)
      let dropped = ref false in
      Net.Fabric.set_fault_hook tb.Tb.fabric
        (Some
           (fun ~src ~dst ~cls ~size ->
             if
               (not !dropped)
               && cls = Net.Stats.Data && size > 1024
               && not (Net.Node.same_machine src dst)
             then begin
               dropped := true;
               Net.Fabric.Drop
             end
             else Net.Fabric.Pass));
      (match Core.Api.memory_copy pa ~src ~dst with
      | Error Core.Error.Timeout -> ()
      | Ok () -> Alcotest.fail "copy succeeded without its open"
      | Error e ->
        Alcotest.failf "expected Timeout, got %s" (Core.Error.to_string e));
      Net.Fabric.set_fault_hook tb.Tb.fabric None;
      check_bool "the open was dropped" true !dropped;
      (* wait out any stragglers, then check nothing leaked *)
      Engine.sleep (Time.ms 7);
      List.iter
        (fun c ->
          check_int "no parked chunk queues" 0
            (Core.Controller.copy_pending_count c);
          check_int "no parked open failures" 0
            (Core.Controller.copy_failures_count c))
        tb.Tb.ctrls)

(* Cross-shard battery: the Xshard workload forces shard placement and
   shard_all, drives odd clients through three-shard third-party copies
   (caller, source owner and destination owner on three different
   shards) and even clients through faceverify. A clean run must
   complete every request and pass every invariant — pass 6 proves no
   directory entry was orphaned. *)
let test_chaos_xshard_clean () =
  let r = small_chaos ~workload:Chaos.Xshard 1 in
  check_bool
    (String.concat "; " r.Chaos.r_violations)
    true (Chaos.passed r);
  check_int "all requests ok" 8 r.Chaos.r_ok;
  check_bool "sharded cluster has several controllers" true
    (List.length r.Chaos.r_ctrls > 1)

let test_chaos_xshard_under_faults () =
  (* under the default fault spec every request must still end in a
     typed completion, with the invariants (including directory
     coherence) intact *)
  let r = small_chaos ~spec:Spec.default ~workload:Chaos.Xshard 3 in
  check_bool
    (String.concat "; " r.Chaos.r_violations)
    true (Chaos.passed r);
  let errs = List.fold_left (fun n (_, c) -> n + c) 0 r.Chaos.r_errors in
  check_int "ok + errors = requests" r.Chaos.r_requests (r.Chaos.r_ok + errs)

let test_chaos_xshard_deterministic () =
  (* same seed, same digest — shard routing, directory invalidation and
     cross-shard copies included *)
  let spec =
    match Spec.of_string "drop=0.01,dup=0.01,crash=1,reboot=400us" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let a = small_chaos ~spec ~workload:Chaos.Xshard 7 in
  let b = small_chaos ~spec ~workload:Chaos.Xshard 7 in
  check_string "same audit digest" a.Chaos.r_audit_digest
    b.Chaos.r_audit_digest;
  check_bool "bit-identical report" true (Chaos.to_lines a = Chaos.to_lines b);
  let c = small_chaos ~spec ~workload:Chaos.Xshard 8 in
  check_bool "different seed, different digest" true
    (a.Chaos.r_audit_digest <> c.Chaos.r_audit_digest)

let test_chaos_xshard_place_timeouts () =
  (* force placement timeouts: 3 ms message delays exceed the 2 ms
     peer_ack_timeout, so callers abandon placements the remote home has
     already minted. The homes must reclaim each abandoned object when
     its lease expires — Invariants pass 6 asserts no placement lease
     survives quiescence, and pass 3 that the reclaims kept live-object
     accounting balanced. *)
  let spec =
    match Spec.of_string "drop=0.02,delayp=0.15,delay=3ms" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let r = small_chaos ~spec ~workload:Chaos.Xshard 5 in
  check_bool
    (String.concat "; " r.Chaos.r_violations)
    true (Chaos.passed r);
  let total name =
    List.fold_left
      (fun n (_, nm, v) -> if nm = name then n + v else n)
      0
      (Obs.Metrics.counters_list ())
  in
  check_bool "place timeouts were forced" true (total "ctrl.place_timeouts" > 0);
  check_bool "abandoned placements were reclaimed" true
    (total "ctrl.place_reclaims" > 0)

(* PD battery: disaggregated prefill/decode inference. Every request must
   end in a typed completion (the client's waits are all timed), crashed
   instances must be routed around, and the invariants must hold over the
   KV Memory objects the pool mints. *)
let test_chaos_pd_clean () =
  let r = small_chaos ~workload:Chaos.Pd 1 in
  check_bool
    (String.concat "; " r.Chaos.r_violations)
    true (Chaos.passed r);
  check_int "all requests ok" 8 r.Chaos.r_ok;
  check_int "no retries without faults" 0 r.Chaos.r_retries

let test_chaos_pd_under_faults () =
  let r = small_chaos ~spec:Spec.default ~workload:Chaos.Pd 3 in
  check_bool
    (String.concat "; " r.Chaos.r_violations)
    true (Chaos.passed r);
  let errs = List.fold_left (fun n (_, c) -> n + c) 0 r.Chaos.r_errors in
  check_int "ok + errors = requests" r.Chaos.r_requests (r.Chaos.r_ok + errs)

let test_chaos_pd_crashes () =
  (* instance-killing crashes with reboots: typed completions only, and
     the routers steer retries to surviving instances *)
  let spec =
    match Spec.of_string "drop=0.01,crash=2,reboot=300us" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let r = small_chaos ~spec ~workload:Chaos.Pd 9 in
  check_bool
    (String.concat "; " r.Chaos.r_violations)
    true (Chaos.passed r);
  let errs = List.fold_left (fun n (_, c) -> n + c) 0 r.Chaos.r_errors in
  check_int "ok + errors = requests" r.Chaos.r_requests (r.Chaos.r_ok + errs)

let test_chaos_pd_deterministic () =
  let spec =
    match Spec.of_string "drop=0.01,dup=0.01,crash=1,reboot=400us" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let a = small_chaos ~spec ~workload:Chaos.Pd 7 in
  let b = small_chaos ~spec ~workload:Chaos.Pd 7 in
  check_string "same audit digest" a.Chaos.r_audit_digest
    b.Chaos.r_audit_digest;
  check_bool "bit-identical report" true (Chaos.to_lines a = Chaos.to_lines b);
  let c = small_chaos ~spec ~workload:Chaos.Pd 8 in
  check_bool "different seed, different digest" true
    (a.Chaos.r_audit_digest <> c.Chaos.r_audit_digest)

let test_chaos_report_shape () =
  let r = small_chaos 5 in
  let lines = Chaos.to_lines r in
  check_bool "report leads with the seed" true
    (String.length (List.hd lines) > 0
    && String.sub (List.hd lines) 0 10 = "chaos seed");
  check_bool "report ends with a result line" true
    (List.exists (fun l -> l = "result: OK") lines);
  check_bool "spec echoed canonically" true
    (List.exists (fun l -> l = "spec: " ^ Spec.to_string Spec.none) lines)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "fault"
    [
      ( "spec",
        [
          Alcotest.test_case "special forms" `Quick test_spec_special_forms;
          Alcotest.test_case "parse errors" `Quick test_spec_parse_errors;
          Alcotest.test_case "lossless predicate" `Quick test_spec_lossless;
          qtest qcheck_spec_roundtrip;
        ] );
      ( "plan",
        [
          qtest qcheck_plan_deterministic;
          qtest qcheck_plan_well_formed;
          Alcotest.test_case "structure" `Quick test_plan_structure;
          Alcotest.test_case "degenerate topology" `Quick
            test_plan_degenerate_topology;
        ] );
      ( "retry",
        [
          Alcotest.test_case "backoff golden sequence" `Quick
            test_retry_backoff_golden;
          Alcotest.test_case "budget exhaustion" `Quick
            test_retry_budget_exhaustion;
          Alcotest.test_case "transient then ok" `Quick
            test_retry_transient_then_ok;
          Alcotest.test_case "permanent error stops" `Quick
            test_retry_permanent_error_stops;
          Alcotest.test_case "timeout converts hang" `Quick
            test_retry_timeout_converts_hang;
          Alcotest.test_case "overloaded is retryable" `Quick
            test_retry_absorbs_overloaded;
          Alcotest.test_case "duplicated invoke, one side effect" `Quick
            test_duplicated_invoke_single_side_effect;
          Alcotest.test_case "local sends ignore drop/duplicate" `Quick
            test_local_faults_ignored;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "clean run" `Quick test_chaos_clean_run;
          Alcotest.test_case "deterministic" `Quick test_chaos_deterministic;
          Alcotest.test_case "default spec invariants" `Quick
            test_chaos_default_spec_invariants;
          Alcotest.test_case "crash bumps epoch" `Quick
            test_chaos_crash_epoch_bump;
          Alcotest.test_case "report shape" `Quick test_chaos_report_shape;
          Alcotest.test_case "copy workload under faults" `Quick
            test_chaos_copy_workload;
          Alcotest.test_case "copy workload deterministic" `Quick
            test_chaos_copy_deterministic;
          Alcotest.test_case "dropped open is reclaimed" `Quick
            test_copy_open_drop_cleanup;
          Alcotest.test_case "xshard clean run" `Quick test_chaos_xshard_clean;
          Alcotest.test_case "xshard under faults" `Quick
            test_chaos_xshard_under_faults;
          Alcotest.test_case "xshard deterministic" `Quick
            test_chaos_xshard_deterministic;
          Alcotest.test_case "xshard forced place timeouts" `Quick
            test_chaos_xshard_place_timeouts;
          Alcotest.test_case "pd clean run" `Quick test_chaos_pd_clean;
          Alcotest.test_case "pd under faults" `Quick
            test_chaos_pd_under_faults;
          Alcotest.test_case "pd instance crashes" `Quick
            test_chaos_pd_crashes;
          Alcotest.test_case "pd deterministic" `Quick
            test_chaos_pd_deterministic;
        ] );
    ]
